#include "vc/mc_via_vc.hpp"

#include <algorithm>

namespace lazymc::vc {

McViaVcResult max_clique_via_vc(const DenseSubgraph& s, VertexId lower_bound,
                                const SolveControl* control,
                                std::uint64_t node_budget,
                                VcScratch* scratch,
                                const std::atomic<VertexId>* live_bound,
                                VertexId live_bound_offset) {
  McViaVcResult out;
  const std::size_t n = s.size();
  if (n == 0 || n <= lower_bound) return out;

  VcScratch local;
  VcScratch& sc = scratch ? *scratch : local;
  s.complement_into(sc.comp);
  const DenseSubgraph& comp = sc.comp;
  KvcOptions opt;
  opt.control = control;

  // Clique size c in s  <=>  VC size n - c in comp.
  // Feasibility of "clique >= c" is monotone decreasing in c; binary
  // search the largest feasible c in [lower_bound + 1, n].
  std::size_t lo = lower_bound + 1;  // smallest interesting clique size
  std::size_t hi = n;                // largest possible
  std::vector<VertexId> best_cover;
  bool found = false;

  while (lo <= hi) {
    if (live_bound) {
      // A concurrently grown incumbent makes probes at or below its size
      // pointless; raising lo retires that part of the range outright.
      VertexId live = live_bound->load(std::memory_order_relaxed);
      live = live > live_bound_offset ? live - live_bound_offset : 0;
      if (static_cast<std::size_t>(live) + 1 > lo) {
        lo = static_cast<std::size_t>(live) + 1;
        if (lo > hi) break;
      }
    }
    std::size_t c = lo + (hi - lo) / 2;
    if (node_budget != 0) {
      if (out.nodes >= node_budget) {
        out.budget_exhausted = true;
        return out;
      }
      opt.max_nodes = node_budget - out.nodes;
    }
    KvcResult r = solve_kvc(comp, static_cast<std::int64_t>(n - c), opt,
                            sc.kvc);
    out.nodes += r.nodes;
    if (r.timed_out) {
      out.timed_out = true;
      return out;
    }
    if (r.budget_exhausted) {
      out.budget_exhausted = true;
      return out;
    }
    if (r.feasible) {
      found = true;
      best_cover = std::move(r.cover);
      lo = c + 1;
    } else {
      if (c == 0) break;
      hi = c - 1;
    }
  }
  if (!found) return out;

  // The clique is the complement of the cover within s.
  std::vector<char>& in_cover = sc.in_cover;
  in_cover.assign(n, 0);
  for (VertexId v : best_cover) in_cover[v] = 1;
  for (std::size_t v = 0; v < n; ++v) {
    if (!in_cover[v]) out.clique.push_back(static_cast<VertexId>(v));
  }
  return out;
}

}  // namespace lazymc::vc
