// k-Vertex-Cover branch-and-bound solver (paper Section IV-E).
//
// Decides whether a dense subgraph has a vertex cover of size <= k and
// produces one when it exists.  Implements the established reduction
// toolkit the paper lists:
//  * Buss kernel: a vertex of degree > k must be in any k-cover;
//  * degree-0/1 kernelisation: isolated vertices are dropped, a
//    degree-1 vertex's neighbor joins the cover;
//  * the merge-free degree-2 rule: when a degree-2 vertex's neighbors are
//    adjacent (a triangle), both neighbors join the cover;
//  * a polynomial path/cycle solver once the maximum degree reaches 2;
//  * branching on the highest-degree vertex: v in the cover, or N(v) is.
//
// State is an "alive" bitset over the (immutable) subgraph adjacency,
// which makes undo-free branching cheap for the small, dense subproblems
// LazyMC generates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/subgraph.hpp"
#include "support/control.hpp"

namespace lazymc::vc {

struct KvcResult {
  bool feasible = false;
  /// A vertex cover of size <= k in local ids (valid when feasible).
  std::vector<VertexId> cover;
  /// Branch nodes expanded (work metric).
  std::uint64_t nodes = 0;
  bool timed_out = false;
  /// True when max_nodes was hit; `feasible` is then meaningless.
  bool budget_exhausted = false;
};

struct KvcOptions {
  const SolveControl* control = nullptr;
  /// Branch-node cap (0 = unlimited); exceeded -> budget_exhausted.
  std::uint64_t max_nodes = 0;
};

/// Reusable state for solve_kvc: one branch bitset + degree array per
/// recursion depth plus the root/matching/path-solver bitsets and the
/// working cover.  Keep one per thread; once capacities reach the
/// high-water mark, infeasible probes (the steady state of MC-via-VC)
/// allocate nothing.
///
/// Degrees are maintained *incrementally*: computed once at the root
/// (one count_and per vertex), copied O(n) into each branch's frame, and
/// decremented along adjacency rows as kernelisation/branching removes
/// vertices — the kernel rounds never recount a row.
struct KvcScratch {
  struct Frame {
    DynamicBitset branch;
    std::vector<VertexId> deg;  // alive-degree snapshot for this branch
  };
  std::vector<Frame> frames;
  DynamicBitset root;
  std::vector<VertexId> root_deg;
  DynamicBitset matching_free;
  DynamicBitset deg2;
  DynamicBitset alive_row;  // remove_vertex's row & alive intermediate
  std::vector<VertexId> cover;
};

/// Decides VC(g) <= k.
KvcResult solve_kvc(const DenseSubgraph& g, std::int64_t k,
                    const KvcOptions& options = {});

/// Scratch-arena variant: identical result, recycled intermediates.
KvcResult solve_kvc(const DenseSubgraph& g, std::int64_t k,
                    const KvcOptions& options, KvcScratch& scratch);

/// Exact minimum vertex cover size via descending feasibility probes
/// (test convenience; the production path uses mc_via_vc's binary search).
std::size_t minimum_vertex_cover(const DenseSubgraph& g,
                                 const KvcOptions& options = {});

}  // namespace lazymc::vc
