// Maximum clique via k-Vertex-Cover on the complement (Section IV-E).
//
// A clique of size c in S corresponds to a vertex cover of size |S| - c in
// the complement of S.  LazyMC routes *dense* subgraphs here: their
// complements are sparse, where the VC kernelisation rules shine.  Like
// dOmega we use repeated k-VC feasibility probes, but — differently — the
// binary search is applied within a single neighborhood's plausible range
// [lower_bound+1, |S|].
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/subgraph.hpp"
#include "support/control.hpp"
#include "vc/kvc.hpp"

namespace lazymc::vc {

struct McViaVcResult {
  /// A clique strictly larger than lower_bound in local ids, empty if the
  /// true maximum does not exceed the bound.  When non-empty this is a
  /// *maximum* clique of the subgraph.
  std::vector<VertexId> clique;
  std::uint64_t nodes = 0;  // total k-VC branch nodes over all probes
  bool timed_out = false;
  /// True when the node budget was exhausted before an answer; the caller
  /// should fall back to the MC solver (adaptive algorithmic choice —
  /// the paper notes "a precise prediction of what algorithm is most
  /// efficient is challenging").
  bool budget_exhausted = false;
};

/// Reusable buffers for max_clique_via_vc: the complement subgraph and
/// the cover-membership marks are recycled across probes when a scratch
/// is supplied (one instance per thread).
struct VcScratch {
  DenseSubgraph comp;
  std::vector<char> in_cover;
  KvcScratch kvc;
};

/// Finds the maximum clique of `s` if it is larger than `lower_bound`.
/// `node_budget` caps the total k-VC branch nodes across all probes
/// (0 = unlimited); when exceeded, the result reports budget_exhausted
/// and the caller decides how to proceed.  `scratch` (optional) recycles
/// the complement-extraction buffers across calls.
///
/// `live_bound` (optional) is a concurrently growing incumbent size,
/// re-read before every feasibility probe after subtracting
/// `live_bound_offset` (saturating): probes for clique sizes the live
/// incumbent already covers are skipped, so a bound raised by another
/// thread mid-solve retires the remaining binary-search range.  With a
/// live bound the result is maximum *relative to the live bound* — a
/// clique no larger than it may be elided, which is harmless for callers
/// publishing into that same incumbent.
McViaVcResult max_clique_via_vc(const DenseSubgraph& s, VertexId lower_bound,
                                const SolveControl* control = nullptr,
                                std::uint64_t node_budget = 0,
                                VcScratch* scratch = nullptr,
                                const std::atomic<VertexId>* live_bound =
                                    nullptr,
                                VertexId live_bound_offset = 0);

}  // namespace lazymc::vc
