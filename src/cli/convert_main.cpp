// lazymc-convert — builds `.lmg` binary graph stores.
//
//   lazymc-convert INPUT OUTPUT [--with-rows] [--rows-omega N] [--verify]
//
// INPUT is anything the driver's --graph accepts (DIMACS, edge list, an
// existing .lmg, or gen:NAME[:SCALE]); OUTPUT is the store to write.  The
// converter always computes and serializes the exact k-core decomposition
// and the (coreness, degree) order, so a later `lazymc --graph OUTPUT`
// mmaps the graph zero-parse AND skips the preprocessing phase.
//
// --with-rows additionally packs a bitset zone row for every vertex whose
// coreness >= the rows threshold.  The threshold defaults to the clique
// size the degree-based heuristic finds (the incumbent a solve would fix
// its zone with); --rows-omega N pins it, e.g. `--rows-omega 1` stores a
// row for every non-isolated-coreness vertex, maximizing the chance a
// future solve can adopt the rows regardless of its own incumbent.
//
// --verify reopens the written file and structurally compares every
// section against the source graph (CSR round-trip, order, coreness,
// row bits) — a failed verification deletes nothing but exits non-zero.
//
// Exit codes match the driver: 0 ok, 3 input error, 4 internal error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/graph_source.hpp"
#include "graph/io.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/heuristic.hpp"
#include "mc/incumbent.hpp"
#include "store/binary_graph.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace lazymc::cli {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitInputError = 3;
constexpr int kExitInternalError = 4;

const char* kUsage =
    "usage: lazymc-convert INPUT OUTPUT [options]\n"
    "\n"
    "Converts a graph to the .lmg binary store: mmap-able CSR plus the\n"
    "precomputed (coreness, degree) order and exact coreness.\n"
    "\n"
    "  INPUT            graph spec (file or gen:NAME[:SCALE])\n"
    "  OUTPUT           .lmg file to write\n"
    "  --with-rows      also pack bitset zone rows (see --rows-omega)\n"
    "  --rows-omega N   zone threshold for --with-rows; rows cover every\n"
    "                   vertex with coreness >= N (default: the omega the\n"
    "                   degree heuristic finds)\n"
    "  --threads N      worker threads (0 = hardware concurrency)\n"
    "  --verify         reopen the output and compare it section by\n"
    "                   section against the source graph\n"
    "  --emit FORMAT    output format: lmg (default), dimacs, or edges —\n"
    "                   the text formats materialize generator specs for\n"
    "                   corpus tooling (tools/corpus.sh)\n"
    "  --help           this text\n";

[[noreturn]] void verify_fail(const std::string& what) {
  throw Error(ErrorKind::kInternal, "verification failed: " + what);
}

/// Structural round-trip check: everything the store serialized must
/// reproduce the source exactly.
void verify_store(const std::string& path, const Graph& g,
                  const kcore::VertexOrder& order,
                  const std::vector<VertexId>& coreness,
                  VertexId degeneracy) {
  auto view = store::BinaryGraphView::open(path);
  const Graph h = view->graph();
  if (h.num_vertices() != g.num_vertices() || h.num_edges() != g.num_edges()) {
    verify_fail("vertex/edge counts differ");
  }
  const auto go = g.offsets(), ho = h.offsets();
  if (!std::equal(go.begin(), go.end(), ho.begin(), ho.end())) {
    verify_fail("CSR offsets differ");
  }
  const auto ga = g.adjacency(), ha = h.adjacency();
  if (!std::equal(ga.begin(), ga.end(), ha.begin(), ha.end())) {
    verify_fail("CSR adjacency differs");
  }
  if (!view->has_order()) verify_fail("order sections missing");
  if (view->order().new_to_orig != order.new_to_orig ||
      view->order().orig_to_new != order.orig_to_new) {
    verify_fail("stored order differs");
  }
  if (view->coreness() != coreness) verify_fail("stored coreness differs");
  if (view->degeneracy() != degeneracy) verify_fail("stored degeneracy differs");
  if (view->has_rows()) {
    const PrebuiltRows rows = view->rows();
    const VertexId zb = rows.zone_begin;
    const std::size_t words =
        (static_cast<std::size_t>(rows.zone_bits) + 63) / 64;
    std::vector<std::uint64_t> expected(words);
    for (VertexId v = zb; v < g.num_vertices(); ++v) {
      std::fill(expected.begin(), expected.end(), 0);
      std::uint32_t count = 0;
      for (VertexId u_orig : g.neighbors(order.new_to_orig[v])) {
        const VertexId u = order.orig_to_new[u_orig];
        if (u < zb) continue;
        expected[(u - zb) >> 6] |= 1ULL << ((u - zb) & 63);
        ++count;
      }
      const std::uint64_t* row =
          rows.words + static_cast<std::size_t>(v - zb) * rows.stride_words;
      if (!std::equal(expected.begin(), expected.end(), row) ||
          rows.counts[v - zb] != count) {
        verify_fail("row bits differ at relabelled vertex " +
                    std::to_string(v));
      }
    }
  }
}

int run(int argc, char** argv) {
  std::string input, output, emit = "lmg";
  bool with_rows = false, verify = false, have_rows_omega = false;
  VertexId rows_omega = 0;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw Error(ErrorKind::kInput,
                    std::string(flag) + " requires an argument");
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return kExitOk;
    } else if (arg == "--with-rows") {
      with_rows = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--rows-omega") {
      rows_omega = static_cast<VertexId>(std::stoul(next("--rows-omega")));
      have_rows_omega = true;
      with_rows = true;
    } else if (arg == "--threads") {
      threads = std::stoul(next("--threads"));
    } else if (arg == "--emit") {
      emit = next("--emit");
      if (emit != "lmg" && emit != "dimacs" && emit != "edges") {
        throw Error(ErrorKind::kInput,
                    "--emit must be lmg, dimacs, or edges (got '" + emit +
                        "')");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error(ErrorKind::kInput, "unknown flag '" + arg + "'");
    } else if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      throw Error(ErrorKind::kInput, "unexpected argument '" + arg + "'");
    }
  }
  if (input.empty() || output.empty()) {
    std::cerr << kUsage;
    return kExitInputError;
  }

  set_num_threads(threads);

  WallTimer timer;
  LoadedGraph loaded = load_graph(input);
  const Graph& g = loaded.graph;
  const double load_seconds = timer.lap();

  if (emit != "lmg") {
    if (with_rows || verify) {
      throw Error(ErrorKind::kInput,
                  "--with-rows / --verify only apply to --emit lmg");
    }
    if (emit == "dimacs") {
      io::write_dimacs_file(g, output);
    } else {
      io::write_edge_list_file(g, output);
    }
    std::cout << "converted " << loaded.description << " -> " << output
              << " (" << emit << ")\n"
              << "  " << g.num_vertices() << " vertices, " << g.num_edges()
              << " edges; load " << load_seconds << "s, write " << timer.lap()
              << "s\n";
    return kExitOk;
  }

  // Exact decomposition (lower bound 0): valid for any future incumbent,
  // and the sequential peel gives a deterministic order + degeneracy.
  kcore::CoreDecomposition core = kcore::coreness(g);
  kcore::VertexOrder order =
      kcore::order_by_coreness_degree_parallel(g, core.coreness);

  store::LmgBuildData data;
  data.order = &order;
  data.coreness = &core.coreness;
  data.degeneracy = core.degeneracy;
  data.with_rows = with_rows;
  if (with_rows) {
    if (!have_rows_omega && g.num_vertices() > 0) {
      // Default threshold: the incumbent a solve's zone would be fixed
      // with — what the degree-based heuristic finds on this graph.
      Incumbent incumbent;
      mc::HeuristicOptions h;
      mc::degree_based_heuristic(g, incumbent, h);
      rows_omega = incumbent.size();
    }
    data.rows_omega = rows_omega;
  }
  const double preprocess_seconds = timer.lap();

  store::write_lmg(g, data, output);
  const double write_seconds = timer.lap();

  if (verify) {
    verify_store(output, g, order, core.coreness, core.degeneracy);
  }

  auto view = store::BinaryGraphView::open(output);
  std::cout << "converted " << loaded.description << " -> " << output << "\n"
            << "  " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << view->file_bytes() << " bytes\n"
            << "  degeneracy " << view->degeneracy() << ", rows "
            << (view->has_rows()
                    ? std::to_string(view->zone_size()) + " (zone begins at " +
                          std::to_string(view->zone_begin()) + ", omega >= " +
                          std::to_string(rows_omega) + ")"
                    : std::string("none"))
            << (verify ? ", verified" : "") << "\n"
            << "  load " << load_seconds << "s, preprocess "
            << preprocess_seconds << "s, write " << write_seconds << "s\n";
  return kExitOk;
}

int safe_main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "lazymc-convert: %s\n", e.what());
    return e.kind() == ErrorKind::kInput ? kExitInputError
                                         : kExitInternalError;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "lazymc-convert: out of memory\n");
    return kExitInternalError;
  } catch (const std::exception& e) {
    // Loader errors surface as std::runtime_error: unreadable or
    // malformed input.
    std::fprintf(stderr, "lazymc-convert: %s\n", e.what());
    return kExitInputError;
  }
}

}  // namespace
}  // namespace lazymc::cli

int main(int argc, char** argv) {
  return lazymc::cli::safe_main(argc, argv);
}
