// lazymc — command-line driver.
//
// Loads a graph (DIMACS, edge list, or a named synthetic-suite instance),
// runs the chosen maximum-clique solver (or MCE), and prints the result
// with full instrumentation as text or JSON.  See cli/options.hpp for the
// flag reference; `lazymc --help` prints it.
#include <cstdio>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "cli/graph_source.hpp"
#include "cli/options.hpp"
#include "cli/report.hpp"
#include "graph/graph.hpp"
#include "mc/lazymc.hpp"
#include "mce/mce.hpp"
#include "support/control.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

namespace lazymc::cli {
namespace {

void solve_into(const Options& options, RunReport& report, const Graph& g) {
  switch (options.solver) {
    case Solver::kLazyMc: {
      mc::LazyMCConfig config;
      config.vertex_order = options.order == Order::kPeeling
                                ? mc::VertexOrderKind::kPeeling
                                : mc::VertexOrderKind::kCorenessDegree;
      switch (options.rep) {
        case Rep::kAuto: config.neighborhood_rep = NeighborhoodRep::kAuto;
          break;
        case Rep::kHash: config.neighborhood_rep = NeighborhoodRep::kHash;
          break;
        case Rep::kSorted: config.neighborhood_rep = NeighborhoodRep::kSorted;
          break;
        case Rep::kBitset: config.neighborhood_rep = NeighborhoodRep::kBitset;
          break;
      }
      config.bitset_budget_bytes = options.bitset_budget_mb << 20;
      config.pre_extraction_density = options.pre_extraction_density;
      switch (options.split) {
        case Split::kAuto: config.split_mode = mc::SplitMode::kAuto; break;
        case Split::kOn: config.split_mode = mc::SplitMode::kOn; break;
        case Split::kOff: config.split_mode = mc::SplitMode::kOff; break;
      }
      config.split_depth = static_cast<unsigned>(options.split_depth);
      config.split_min_cands =
          static_cast<VertexId>(options.split_min_cands);
      config.split_min_work = options.split_min_work;
      switch (options.kernels) {
        case Kernels::kAuto: break;  // leave the dispatcher on best-tier
        case Kernels::kScalar: config.kernel_tier = simd::Tier::kScalar;
          break;
        case Kernels::kAvx2: config.kernel_tier = simd::Tier::kAvx2; break;
        case Kernels::kAvx512: config.kernel_tier = simd::Tier::kAvx512;
          break;
      }
      config.time_limit_seconds = options.time_limit_seconds;
      report.lazymc = mc::lazy_mc(g, config);
      report.has_lazymc = true;
      report.clique = report.lazymc.clique;
      report.omega = report.lazymc.omega;
      report.timed_out = report.lazymc.timed_out;
      return;
    }
    case Solver::kDomegaLinearScan:
    case Solver::kDomegaBinarySearch: {
      baselines::DomegaOptions domega;
      domega.time_limit_seconds = options.time_limit_seconds;
      auto mode = options.solver == Solver::kDomegaLinearScan
                      ? baselines::DomegaMode::kLinearScan
                      : baselines::DomegaMode::kBinarySearch;
      auto result = baselines::domega_solve(g, mode, domega);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kMcBrb: {
      baselines::McBrbOptions mcbrb;
      mcbrb.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::mcbrb_solve(g, mcbrb);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kPmc: {
      baselines::PmcOptions pmc;
      pmc.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::pmc_solve(g, pmc);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kReference: {
      report.clique = baselines::max_clique_reference(g);
      report.omega = static_cast<VertexId>(report.clique.size());
      return;
    }
    case Solver::kMce: {
      SolveControl control(options.time_limit_seconds);
      auto result = mce::count_maximal_cliques(g, &control);
      report.has_mce = true;
      report.mce_count = result.count;
      report.omega = result.max_size;
      report.timed_out = result.timed_out;
      return;
    }
  }
}

/// Loads and solves one instance, writing the report to stdout.
void run_instance(const Options& options, const std::string& spec,
                  bool json) {
  LoadedGraph loaded = load_graph(spec);
  RunReport report;
  report.graph = loaded.description;
  report.solver = solver_name(options.solver);
  report.threads = num_threads();
  report.num_vertices = loaded.graph.num_vertices();
  report.num_edges = loaded.graph.num_edges();
  report.load_seconds = loaded.load_seconds;

  WallTimer timer;
  solve_into(options, report, loaded.graph);
  report.solve_seconds = timer.elapsed();

  // Independent re-check of the witness before anything is printed, in
  // every build (not just checked ones): the clique must be pairwise
  // adjacent in the *input* graph and match the omega we are about to
  // report.  MCE reports a count, not a witness, so it stays "skipped".
  if (!report.has_mce) {
    const bool ok =
        report.clique.size() == static_cast<std::size_t>(report.omega) &&
        is_clique(loaded.graph, report.clique);
    report.verification = ok ? "ok" : "failed";
  }

  if (json) {
    render_json(report, std::cout);
  } else {
    render_text(report, std::cout);
  }
  if (report.verification == "failed") {
    throw std::runtime_error(
        "result verification failed: the reported clique is not a clique "
        "of the input graph (see the printed report)");
  }
}

int run(int argc, char** argv) {
  bool wants_help = false;
  Options options = parse_options(argc, argv, wants_help);
  if (wants_help) {
    std::cout << usage();
    return 0;
  }

  set_num_threads(options.threads);

  std::vector<std::string> specs = options.graph_specs;
  if (!options.manifest_path.empty()) {
    auto manifest = read_manifest(options.manifest_path);
    specs.insert(specs.end(), manifest.begin(), manifest.end());
  }
  if (specs.empty()) {
    throw std::runtime_error("manifest '" + options.manifest_path +
                             "' names no instances");
  }

  if (specs.size() == 1) {
    run_instance(options, specs[0], options.json);
    return 0;
  }

  // Batch mode: stream one JSON object per instance (newline-delimited)
  // so a sweep over a whole corpus is one process and one parseable
  // stream.  A failing instance emits an error object and the sweep
  // continues; the exit code reports whether every instance succeeded.
  int failures = 0;
  for (const std::string& spec : specs) {
    try {
      run_instance(options, spec, /*json=*/true);
    } catch (const std::exception& e) {
      JsonWriter w(std::cout);
      w.open();
      w.field("graph", spec);
      w.field("error", e.what());
      w.close();
      std::cout << "\n";
      ++failures;
    }
    std::cout.flush();
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lazymc::cli

int main(int argc, char** argv) {
  try {
    return lazymc::cli::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lazymc: %s\n", e.what());
    return 1;
  }
}
