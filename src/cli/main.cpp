// lazymc — command-line driver.
//
// Loads a graph (DIMACS, edge list, or a named synthetic-suite instance),
// runs the chosen maximum-clique solver (or MCE), and prints the result
// with full instrumentation as text or JSON.  See cli/options.hpp for the
// flag reference; `lazymc --help` prints it.
#include <cstdio>
#include <exception>
#include <iostream>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "cli/graph_source.hpp"
#include "cli/options.hpp"
#include "cli/report.hpp"
#include "mc/lazymc.hpp"
#include "mce/mce.hpp"
#include "support/control.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace lazymc::cli {
namespace {

void solve_into(const Options& options, RunReport& report, const Graph& g) {
  switch (options.solver) {
    case Solver::kLazyMc: {
      mc::LazyMCConfig config;
      config.vertex_order = options.order == Order::kPeeling
                                ? mc::VertexOrderKind::kPeeling
                                : mc::VertexOrderKind::kCorenessDegree;
      switch (options.rep) {
        case Rep::kAuto: config.neighborhood_rep = NeighborhoodRep::kAuto;
          break;
        case Rep::kHash: config.neighborhood_rep = NeighborhoodRep::kHash;
          break;
        case Rep::kSorted: config.neighborhood_rep = NeighborhoodRep::kSorted;
          break;
        case Rep::kBitset: config.neighborhood_rep = NeighborhoodRep::kBitset;
          break;
      }
      config.bitset_budget_bytes = options.bitset_budget_mb << 20;
      config.pre_extraction_density = options.pre_extraction_density;
      config.time_limit_seconds = options.time_limit_seconds;
      report.lazymc = mc::lazy_mc(g, config);
      report.has_lazymc = true;
      report.clique = report.lazymc.clique;
      report.omega = report.lazymc.omega;
      report.timed_out = report.lazymc.timed_out;
      return;
    }
    case Solver::kDomegaLinearScan:
    case Solver::kDomegaBinarySearch: {
      baselines::DomegaOptions domega;
      domega.time_limit_seconds = options.time_limit_seconds;
      auto mode = options.solver == Solver::kDomegaLinearScan
                      ? baselines::DomegaMode::kLinearScan
                      : baselines::DomegaMode::kBinarySearch;
      auto result = baselines::domega_solve(g, mode, domega);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kMcBrb: {
      baselines::McBrbOptions mcbrb;
      mcbrb.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::mcbrb_solve(g, mcbrb);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kPmc: {
      baselines::PmcOptions pmc;
      pmc.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::pmc_solve(g, pmc);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kReference: {
      report.clique = baselines::max_clique_reference(g);
      report.omega = static_cast<VertexId>(report.clique.size());
      return;
    }
    case Solver::kMce: {
      SolveControl control(options.time_limit_seconds);
      auto result = mce::count_maximal_cliques(g, &control);
      report.has_mce = true;
      report.mce_count = result.count;
      report.omega = result.max_size;
      report.timed_out = result.timed_out;
      return;
    }
  }
}

int run(int argc, char** argv) {
  bool wants_help = false;
  Options options = parse_options(argc, argv, wants_help);
  if (wants_help) {
    std::cout << usage();
    return 0;
  }

  set_num_threads(options.threads);

  LoadedGraph loaded = load_graph(options.graph_spec);
  RunReport report;
  report.graph = loaded.description;
  report.solver = solver_name(options.solver);
  report.threads = num_threads();
  report.num_vertices = loaded.graph.num_vertices();
  report.num_edges = loaded.graph.num_edges();
  report.load_seconds = loaded.load_seconds;

  WallTimer timer;
  solve_into(options, report, loaded.graph);
  report.solve_seconds = timer.elapsed();

  if (options.json) {
    render_json(report, std::cout);
  } else {
    render_text(report, std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace lazymc::cli

int main(int argc, char** argv) {
  try {
    return lazymc::cli::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lazymc: %s\n", e.what());
    return 1;
  }
}
