// lazymc — command-line driver.
//
// Loads a graph (DIMACS, edge list, or a named synthetic-suite instance),
// runs the chosen maximum-clique solver (or MCE), and prints the result
// with full instrumentation as text or JSON.  See cli/options.hpp for the
// flag reference; `lazymc --help` prints it.
//
// Failure model (see README "Failure model & graceful degradation"):
//  * the --time-limit clock starts before graph load/parse, so it bounds
//    end-to-end wall time per instance;
//  * SIGINT/SIGTERM cancel the in-flight solve through the cooperative
//    SolveControl — the report still carries the best-so-far clique with
//    "interrupted": true, and the process exits with a distinct code;
//  * batch sweeps journal each completed instance (--journal) and can
//    skip journaled work on a re-run (--resume); transient per-instance
//    failures retry with capped exponential backoff (--retries);
//  * every failure is classified (ErrorKind) into the exit-code contract
//    documented in usage() and, in batch mode, into machine-readable
//    error objects (error_kind / attempts / errno).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <exception>
#include <functional>
#include <iostream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "cli/graph_source.hpp"
#include "cli/journal.hpp"
#include "cli/options.hpp"
#include "cli/report.hpp"
#include "graph/graph.hpp"
#include "mc/lazymc.hpp"
#include "mce/mce.hpp"
#include "support/control.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

namespace lazymc::cli {
namespace {

// Exit-code contract (documented in usage() and README; asserted by
// cli_smoke).  1 is deliberately unused: it is what a crash through the
// default terminate path or a shell-level failure tends to produce, so
// the codes the driver *chooses* stay distinguishable from it.
constexpr int kExitSolved = 0;
constexpr int kExitTimedOut = 2;
constexpr int kExitInputError = 3;
constexpr int kExitInternalError = 4;
constexpr int kExitBatchFailures = 5;
constexpr int kExitInterrupted = 6;

int exit_code_for(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInput: return kExitInputError;
    case ErrorKind::kInterrupted: return kExitInterrupted;
    case ErrorKind::kResource:
    case ErrorKind::kInternal:
    // kOverloaded is a daemon-side rejection; the batch driver never
    // produces it, but a classified Error must still map somewhere sane.
    case ErrorKind::kOverloaded: return kExitInternalError;
  }
  return kExitInternalError;
}

// The handler performs one relaxed atomic store (async-signal-safe); all
// solvers observe the flag through SolveControl's cooperative checks, so
// the in-flight solve unwinds with its best-so-far incumbent intact.
void on_signal(int) { interrupt::request(); }

void install_signal_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

/// Rethrows the in-flight exception and returns it classified.  Anything
/// already structured passes through; allocation failure is transient
/// (resource); everything else defaults to `fallback`.
Error classify_current_exception(ErrorKind fallback) {
  try {
    throw;
  } catch (const Error& e) {
    return e;
  } catch (const std::bad_alloc&) {
    return Error(ErrorKind::kResource, "out of memory");
  } catch (const std::exception& e) {
    return Error(fallback, e.what());
  } catch (...) {
    return Error(ErrorKind::kInternal, "unknown exception");
  }
}

void solve_into(const Options& options, RunReport& report,
                const LoadedGraph& loaded) {
  const Graph& g = loaded.graph;
  switch (options.solver) {
    case Solver::kLazyMc: {
      mc::LazyMCConfig config;
      // Binary-store loads ship the preprocessing (order, coreness,
      // prebuilt rows); hand it to the solve so those phases collapse.
      mc::PrebuiltGraph prebuilt;
      if (loaded.store && loaded.store->has_order()) {
        prebuilt.order = &loaded.store->order();
        prebuilt.coreness = &loaded.store->coreness();
        prebuilt.degeneracy = loaded.store->degeneracy();
        prebuilt.rows = loaded.store->rows();
        config.prebuilt = &prebuilt;
      }
      config.vertex_order = options.order == Order::kPeeling
                                ? mc::VertexOrderKind::kPeeling
                                : mc::VertexOrderKind::kCorenessDegree;
      switch (options.rep) {
        case Rep::kAuto: config.neighborhood_rep = NeighborhoodRep::kAuto;
          break;
        case Rep::kHash: config.neighborhood_rep = NeighborhoodRep::kHash;
          break;
        case Rep::kSorted: config.neighborhood_rep = NeighborhoodRep::kSorted;
          break;
        case Rep::kBitset: config.neighborhood_rep = NeighborhoodRep::kBitset;
          break;
        case Rep::kHybrid: config.neighborhood_rep = NeighborhoodRep::kHybrid;
          break;
      }
      config.bitset_budget_bytes = options.bitset_budget_mb << 20;
      config.hybrid_array_max =
          static_cast<std::uint32_t>(options.hybrid_array_max);
      config.hybrid_run_min_saving = options.hybrid_run_min_saving;
      config.pre_extraction_density = options.pre_extraction_density;
      switch (options.split) {
        case Split::kAuto: config.split_mode = mc::SplitMode::kAuto; break;
        case Split::kOn: config.split_mode = mc::SplitMode::kOn; break;
        case Split::kOff: config.split_mode = mc::SplitMode::kOff; break;
      }
      config.split_depth = static_cast<unsigned>(options.split_depth);
      config.split_min_cands =
          static_cast<VertexId>(options.split_min_cands);
      config.split_min_work = options.split_min_work;
      switch (options.kernels) {
        case Kernels::kAuto: break;  // leave the dispatcher on best-tier
        case Kernels::kScalar: config.kernel_tier = simd::Tier::kScalar;
          break;
        case Kernels::kAvx2: config.kernel_tier = simd::Tier::kAvx2; break;
        case Kernels::kAvx512: config.kernel_tier = simd::Tier::kAvx512;
          break;
      }
      config.time_limit_seconds = options.time_limit_seconds;
      report.lazymc = mc::lazy_mc(g, config);
      report.has_lazymc = true;
      report.clique = report.lazymc.clique;
      report.omega = report.lazymc.omega;
      report.timed_out = report.lazymc.timed_out;
      return;
    }
    case Solver::kDomegaLinearScan:
    case Solver::kDomegaBinarySearch: {
      baselines::DomegaOptions domega;
      domega.time_limit_seconds = options.time_limit_seconds;
      auto mode = options.solver == Solver::kDomegaLinearScan
                      ? baselines::DomegaMode::kLinearScan
                      : baselines::DomegaMode::kBinarySearch;
      auto result = baselines::domega_solve(g, mode, domega);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kMcBrb: {
      baselines::McBrbOptions mcbrb;
      mcbrb.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::mcbrb_solve(g, mcbrb);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kPmc: {
      baselines::PmcOptions pmc;
      pmc.time_limit_seconds = options.time_limit_seconds;
      auto result = baselines::pmc_solve(g, pmc);
      report.clique = std::move(result.clique);
      report.omega = result.omega;
      report.timed_out = result.timed_out;
      return;
    }
    case Solver::kReference: {
      report.clique = baselines::max_clique_reference(g);
      report.omega = static_cast<VertexId>(report.clique.size());
      return;
    }
    case Solver::kMce: {
      SolveControl control(options.time_limit_seconds);
      auto result = mce::count_maximal_cliques(g, &control);
      report.has_mce = true;
      report.mce_count = result.count;
      report.omega = result.max_size;
      report.timed_out = result.timed_out;
      return;
    }
  }
}

/// What one instance attempt produced, for exit codes and error objects.
struct InstanceOutcome {
  enum class Status { kSolved, kTimedOut, kInterrupted, kFailed };
  Status status = Status::kSolved;
  VertexId omega = 0;
  // Failure details (Status::kFailed only).
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  int sys_errno = 0;
  // Attempts actually made (> 1 after transient-failure retries).
  int attempts = 1;
};

/// Loads and solves one instance, writing the report to stdout.  Throws a
/// classified Error on failure.
InstanceOutcome solve_once(const Options& options, const std::string& spec,
                           bool json) {
  // The end-to-end clock starts *before* load/parse, so --time-limit
  // bounds wall time per instance, not just solver time: whatever the
  // load consumed is subtracted from the solver's budget below.
  WallTimer end_to_end;
  LoadedGraph loaded;
  try {
    loaded = load_graph(spec);
  } catch (const Error&) {
    throw;
  } catch (const std::bad_alloc&) {
    throw Error(ErrorKind::kResource, "out of memory loading '" + spec + "'");
  } catch (const std::exception& e) {
    // Unreadable or ill-formed input; errno is the OS detail when the
    // failure was an open/read (0 otherwise).
    throw Error(ErrorKind::kInput, e.what(), errno);
  }

  RunReport report;
  report.graph = loaded.description;
  report.solver = solver_name(options.solver);
  report.threads = num_threads();
  report.num_vertices = loaded.graph.num_vertices();
  report.num_edges = loaded.graph.num_edges();
  report.load_seconds = loaded.load_seconds;
  report.load_path = loaded.load_path;

  Options budgeted = options;
  if (std::isfinite(options.time_limit_seconds)) {
    // Clamp tiny-positive: a load that already exhausted the limit makes
    // the solver cancel at its first cooperative check and report
    // best-so-far (timed out), rather than dying on a zero/negative limit.
    budgeted.time_limit_seconds =
        std::max(options.time_limit_seconds - end_to_end.elapsed(), 1e-9);
  }

  WallTimer timer;
  solve_into(budgeted, report, loaded);
  report.solve_seconds = timer.elapsed();

  // The solvers share one cancellation path for the clock and the signal;
  // the flag says which it was.  An interrupt takes precedence (the limit
  // did not expire — the user did).
  report.interrupted = interrupt::requested();
  if (report.interrupted) report.timed_out = false;

  // Independent re-check of the witness before anything is printed, in
  // every build (not just checked ones): the clique must be pairwise
  // adjacent in the *input* graph and match the omega we are about to
  // report.  MCE reports a count, not a witness, so it stays "skipped".
  if (!report.has_mce) {
    const bool ok =
        report.clique.size() == static_cast<std::size_t>(report.omega) &&
        is_clique(loaded.graph, report.clique);
    report.verification = ok ? "ok" : "failed";
  }

  report.fault_sites = faults::snapshot();

  if (json) {
    render_json(report, std::cout);
  } else {
    render_text(report, std::cout);
  }
  if (report.verification == "failed") {
    throw Error(ErrorKind::kInternal,
                "result verification failed: the reported clique is not a "
                "clique of the input graph (see the printed report)");
  }

  InstanceOutcome out;
  out.omega = report.omega;
  out.status = report.interrupted ? InstanceOutcome::Status::kInterrupted
               : report.timed_out ? InstanceOutcome::Status::kTimedOut
                                  : InstanceOutcome::Status::kSolved;
  return out;
}

/// solve_once plus the retry policy: transient (resource) failures are
/// re-attempted up to --retries times with capped exponential backoff;
/// everything else fails fast.  Never throws — failures come back as
/// Status::kFailed outcomes carrying their classification.
InstanceOutcome run_instance(const Options& options, const std::string& spec,
                             bool json) {
  const std::size_t max_attempts = options.retries + 1;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      InstanceOutcome out = solve_once(options, spec, json);
      out.attempts = static_cast<int>(attempt);
      return out;
    } catch (...) {
      const Error err = classify_current_exception(ErrorKind::kInternal);
      if (err.transient() && attempt < max_attempts &&
          !interrupt::requested()) {
        // Capped exponential backoff: 50ms doubling to at most 1s, with
        // +/-25% deterministic jitter so a manifest sweep (or a fleet of
        // daemon clients) that hit one shared transient failure does not
        // retry in lockstep.  Seeded from splitmix64 over the spec and
        // attempt — no global RNG state, and re-runs replay exactly.
        const std::uint64_t base = std::min<std::uint64_t>(
            std::uint64_t{50} << (attempt - 1), 1000);
        std::uint64_t seed = std::hash<std::string>{}(spec) ^
                             (std::uint64_t{0x9e3779b9} * attempt);
        const std::uint64_t rand = splitmix64(seed);
        // Map to [0.75, 1.25): jitter = 0.75 + (rand / 2^64) * 0.5.
        const double factor =
            0.75 + static_cast<double>(rand >> 11) * 0x1.0p-53 * 0.5;
        const auto delay = std::chrono::milliseconds(
            static_cast<std::uint64_t>(static_cast<double>(base) * factor));
        std::this_thread::sleep_for(delay);
        continue;
      }
      InstanceOutcome out;
      out.status = InstanceOutcome::Status::kFailed;
      out.kind = err.kind();
      out.message = err.what();
      out.sys_errno = err.sys_errno();
      out.attempts = static_cast<int>(attempt);
      return out;
    }
  }
}

/// Machine-readable failure record for batch streams (and --json single
/// runs): downstream harnesses branch on error_kind/attempts without
/// parsing prose.
void emit_error_object(const std::string& spec, const InstanceOutcome& out) {
  JsonWriter w(std::cout);
  w.open();
  w.field("graph", spec);
  w.field("error", out.message);
  w.field("error_kind", error_kind_name(out.kind));
  w.field("attempts", out.attempts);
  if (out.sys_errno != 0) w.field("errno", out.sys_errno);
  w.close();
  std::cout << "\n";
}

int run(int argc, char** argv) {
  bool wants_help = false;
  Options options = parse_options(argc, argv, wants_help);
  if (wants_help) {
    std::cout << usage();
    return kExitSolved;
  }

  install_signal_handlers();
  // Fault plans: environment first, then --fault flags in order (both
  // reject non-fault builds and malformed specs as input errors).
  faults::configure_from_env();
  for (const std::string& spec : options.fault_specs) {
    faults::configure(spec);
  }

  set_num_threads(options.threads);

  std::vector<std::string> specs = options.graph_specs;
  if (!options.manifest_path.empty()) {
    try {
      auto manifest = read_manifest(options.manifest_path);
      specs.insert(specs.end(), manifest.begin(), manifest.end());
    } catch (const Error&) {
      throw;
    } catch (const std::exception& e) {
      throw Error(ErrorKind::kInput, e.what(), errno);
    }
    if (specs.empty()) {
      throw Error(ErrorKind::kInput, "manifest '" + options.manifest_path +
                                         "' names no instances");
    }
  }

  // A journal implies batch semantics even for a single instance (a
  // one-line manifest must still be resumable).
  const bool batch = specs.size() > 1 || !options.journal_path.empty();

  if (!batch) {
    InstanceOutcome out = run_instance(options, specs[0], options.json);
    switch (out.status) {
      case InstanceOutcome::Status::kSolved: return kExitSolved;
      case InstanceOutcome::Status::kTimedOut: return kExitTimedOut;
      case InstanceOutcome::Status::kInterrupted: return kExitInterrupted;
      case InstanceOutcome::Status::kFailed: break;
    }
    if (options.json) {
      emit_error_object(specs[0], out);
    }
    std::fprintf(stderr, "lazymc: %s\n", out.message.c_str());
    return exit_code_for(out.kind);
  }

  // Batch mode: stream one JSON object per instance (newline-delimited)
  // so a sweep over a whole corpus is one process and one parseable
  // stream.  A failing instance emits an error object and the sweep
  // continues; completed instances (solved or timed out) are journaled so
  // --resume can skip them; an interrupt stops the sweep after the
  // in-flight instance reports best-so-far.
  Journal journal(options.journal_path);
  std::set<std::string> done;
  if (options.resume) done = journal.completed();
  int failures = 0;
  bool interrupted = false;
  for (const std::string& spec : specs) {
    if (interrupt::requested()) {
      interrupted = true;
      break;
    }
    if (options.resume && done.count(spec) > 0) continue;
    InstanceOutcome out = run_instance(options, spec, /*json=*/true);
    switch (out.status) {
      case InstanceOutcome::Status::kSolved:
        journal.record(spec, "ok", out.omega);
        break;
      case InstanceOutcome::Status::kTimedOut:
        // Timed out counts as completed: re-running it under the same
        // limit reproduces the timeout, so --resume skips it too.
        journal.record(spec, "timeout", out.omega);
        break;
      case InstanceOutcome::Status::kInterrupted:
        // Not journaled: a resumed sweep re-runs the interrupted solve.
        interrupted = true;
        break;
      case InstanceOutcome::Status::kFailed:
        // Not journaled either — failures are what --resume retries.
        emit_error_object(spec, out);
        ++failures;
        break;
    }
    std::cout.flush();
    if (interrupted) break;
  }
  if (interrupted || interrupt::requested()) return kExitInterrupted;
  return failures == 0 ? kExitSolved : kExitBatchFailures;
}

int safe_main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "lazymc: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "lazymc: out of memory\n");
    return kExitInternalError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lazymc: %s\n", e.what());
    return kExitInternalError;
  }
}

}  // namespace
}  // namespace lazymc::cli

int main(int argc, char** argv) {
  return lazymc::cli::safe_main(argc, argv);
}
