// Renders a driver run as human-readable text or a single JSON object.
//
// The JSON form exposes the complete LazyMCResult instrumentation (phase
// times, search stats, lazy-graph stats) so scripted sweeps can regenerate
// the paper's figures without parsing tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mc/lazymc.hpp"
#include "support/faultinject.hpp"

namespace lazymc::cli {

struct RunReport {
  /// Daemon request identity, empty for plain CLI runs.  When set,
  /// render_json leads the object with request_id/status so lazymcd's
  /// solve responses are the CLI's --json schema plus request framing.
  /// status is "ok", "timeout", or "interrupted".
  std::string request_id;
  std::string request_status;

  std::string graph;   // LoadedGraph::description
  std::string solver;  // solver_name(...)
  std::size_t threads = 1;
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double load_seconds = 0;
  /// LoadedGraph::load_path: "parse", "mmap", or "gen".
  std::string load_path = "parse";
  double solve_seconds = 0;

  std::vector<VertexId> clique;  // empty for mce
  VertexId omega = 0;
  bool timed_out = false;
  /// SIGINT/SIGTERM arrived during the solve: the clique is best-so-far
  /// (anytime result), and the driver exits with the interrupted code.
  bool interrupted = false;

  /// Independent post-solve check of the witness clique against the input
  /// graph (pairwise adjacency + size agreement with omega), run in every
  /// build: "ok", "failed", or "skipped" (MCE reports no witness).
  std::string verification = "skipped";

  /// Full instrumentation, present only for --solver lazymc.
  bool has_lazymc = false;
  mc::LazyMCResult lazymc;

  /// Present only for --solver mce.
  bool has_mce = false;
  std::uint64_t mce_count = 0;

  /// Fault-injection counters (faults::snapshot()); non-empty only in
  /// -DLAZYMC_FAULTS=ON builds once any site was interned.
  std::vector<faults::SiteStats> fault_sites;
};

void render_text(const RunReport& report, std::ostream& out);
void render_json(const RunReport& report, std::ostream& out);

}  // namespace lazymc::cli
