#include "cli/report.hpp"

#include <iomanip>
#include <ostream>

#include "support/json.hpp"

namespace lazymc::cli {

void render_text(const RunReport& r, std::ostream& out) {
  out << "graph:    " << r.graph << "  (" << r.num_vertices << " vertices, "
      << r.num_edges << " edges; loaded in " << std::fixed
      << std::setprecision(3) << r.load_seconds << "s via " << r.load_path
      << ")\n";
  out << "solver:   " << r.solver << "  (" << r.threads << " thread"
      << (r.threads == 1 ? "" : "s") << ")\n";
  if (r.has_mce) {
    out << "maximal cliques: " << r.mce_count << "\n";
    out << "largest maximal clique (omega): " << r.omega << "\n";
  } else {
    out << "omega:    " << r.omega << "\n";
    out << "clique:  ";
    for (VertexId v : r.clique) out << ' ' << v;
    out << "\n";
    out << "verification: " << r.verification << "\n";
  }
  if (r.timed_out) out << "TIMED OUT (result is a lower bound)\n";
  if (r.interrupted) out << "INTERRUPTED (result is best-so-far)\n";
  out << "time:     " << std::setprecision(3) << r.solve_seconds << "s\n";
  if (!r.fault_sites.empty()) {
    out << "faults:  ";
    for (const auto& site : r.fault_sites) {
      out << ' ' << site.name << "=" << site.fires << "/" << site.hits;
      if (site.armed) out << "*";
    }
    out << "  (fires/hits, * = armed)\n";
  }
  if (!r.has_lazymc) return;

  const auto& lz = r.lazymc;
  // The gap d + 1 - omega only makes sense when the k-core phase ran
  // (the heuristic can certify optimality first, leaving degeneracy 0).
  const std::int64_t gap = static_cast<std::int64_t>(lz.degeneracy) + 1 -
                           static_cast<std::int64_t>(lz.omega);
  out << "\nheuristics: degree omega_d=" << lz.heuristic_degree_omega
      << ", coreness omega_h=" << lz.heuristic_coreness_omega
      << "; degeneracy d=" << lz.degeneracy;
  if (gap >= 0) out << " (clique-core gap " << gap << ")";
  out << "\n";
  out << "phases (s): degree-heur=" << lz.phases.degree_heuristic
      << " preprocess=" << lz.phases.preprocessing
      << " must-subgraph=" << lz.phases.must_subgraph
      << " coreness-heur=" << lz.phases.coreness_heuristic
      << " systematic=" << lz.phases.systematic
      << " total=" << lz.phases.total() << "\n";
  const auto& s = lz.search;
  out << "search:   evaluated=" << s.evaluated
      << " pass1=" << s.pass_filter1 << " pass2=" << s.pass_filter2
      << " pass3=" << s.pass_filter3 << " solved-mc=" << s.solved_mc
      << " solved-vc=" << s.solved_vc << " vc-fallbacks=" << s.vc_fallbacks
      << " retired-chunks=" << s.retired_chunks << "\n";
  out << "split:    tasks=" << s.split_tasks
      << " retired-subtasks=" << s.retired_subtasks
      << " max-depth=" << s.max_split_depth
      << " work-rejected=" << s.split_work_rejected << "\n";
  if (s.time_to_first_solution > 0) {
    out << "anytime:  first-solution=" << s.time_to_first_solution
        << "s improvements=" << s.improvements.size()
        << " (last at " << s.improvements.back().seconds << "s)\n";
  }
  const auto& lg = lz.lazy_graph;
  if (lg.bitset_degraded + s.degraded_wordsets + s.degraded_splits > 0) {
    out << "degraded: bitset-rows=" << lg.bitset_degraded
        << " wordsets=" << s.degraded_wordsets
        << " splits=" << s.degraded_splits
        << " (recovered allocation failures)\n";
  }
  out << "          mc-nodes=" << s.mc_nodes << " vc-nodes=" << s.vc_nodes
      << " filter=" << s.filter_seconds << "s mc=" << s.mc_seconds
      << "s vc=" << s.vc_seconds << "s\n";
  out << "kernels:  merge=" << s.kernel_merge << " gallop=" << s.kernel_gallop
      << " hash=" << s.kernel_hash
      << " hash-batched=" << s.kernel_hash_batched
      << " bitset-probe=" << s.kernel_bitset_probe
      << " bitset-word=" << s.kernel_bitset_word
      << " array-gallop=" << s.kernel_array_gallop
      << " run-and=" << s.kernel_run_and << "\n";
  out << "          simd-tier=" << s.simd_tier
      << " word-scalar=" << s.kernel_word_scalar
      << " word-avx2=" << s.kernel_word_avx2
      << " word-avx512=" << s.kernel_word_avx512 << "\n";
  const auto& g = lz.lazy_graph;
  out << "lazygraph: hash-built=" << g.hash_built
      << " sorted-built=" << g.sorted_built
      << " bitset-built=" << g.bitset_built
      << " rows-prebuilt=" << g.rows_prebuilt
      << " bitset-bytes=" << g.bitset_bytes << " zone=" << g.zone_size
      << "\n           neighbors-kept=" << g.neighbors_kept
      << " neighbors-filtered=" << g.neighbors_filtered << "\n";
  if (g.hybrid_rows_array + g.hybrid_rows_bitset + g.hybrid_rows_run > 0) {
    out << "hybrid:   rows array=" << g.hybrid_rows_array
        << " bitset=" << g.hybrid_rows_bitset << " run=" << g.hybrid_rows_run
        << "\n          bytes array=" << g.hybrid_array_bytes
        << " bitset=" << g.hybrid_bitset_bytes
        << " run=" << g.hybrid_run_bytes << "\n";
  }
}

void render_json(const RunReport& r, std::ostream& out) {
  JsonWriter w(out);
  w.open();
  if (!r.request_id.empty()) w.field("request_id", r.request_id);
  if (!r.request_status.empty()) w.field("status", r.request_status);
  w.field("graph", r.graph);
  w.field("solver", r.solver);
  w.field("threads", r.threads);
  w.field("num_vertices", r.num_vertices);
  w.field("num_edges", r.num_edges);
  w.field("load_seconds", r.load_seconds);
  w.field("load_path", r.load_path);
  w.field("solve_seconds", r.solve_seconds);
  w.field("omega", r.omega);
  w.field("timed_out", r.timed_out);
  w.field("interrupted", r.interrupted);
  w.field("verification", r.verification);
  if (!r.has_mce) w.field("clique", r.clique);
  if (r.has_mce) w.field("maximal_clique_count", r.mce_count);
  if (r.has_lazymc) {
    const auto& lz = r.lazymc;
    w.field("heuristic_degree_omega", lz.heuristic_degree_omega);
    w.field("heuristic_coreness_omega", lz.heuristic_coreness_omega);
    w.field("degeneracy", lz.degeneracy);
    w.open("phases");
    w.field("degree_heuristic", lz.phases.degree_heuristic);
    w.field("preprocessing", lz.phases.preprocessing);
    w.field("must_subgraph", lz.phases.must_subgraph);
    w.field("coreness_heuristic", lz.phases.coreness_heuristic);
    w.field("systematic", lz.phases.systematic);
    w.field("total", lz.phases.total());
    w.close();
    const auto& s = lz.search;
    w.open("search");
    w.field("evaluated", s.evaluated);
    w.field("pass_filter1", s.pass_filter1);
    w.field("pass_filter2", s.pass_filter2);
    w.field("pass_filter3", s.pass_filter3);
    w.field("solved_mc", s.solved_mc);
    w.field("solved_vc", s.solved_vc);
    w.field("vc_fallbacks", s.vc_fallbacks);
    w.field("retired_chunks", s.retired_chunks);
    w.field("split_tasks", s.split_tasks);
    w.field("retired_subtasks", s.retired_subtasks);
    w.field("max_split_depth", s.max_split_depth);
    w.field("split_work_rejected", s.split_work_rejected);
    w.field("time_to_first_solution", s.time_to_first_solution);
    w.open_array("improvements");
    for (const auto& imp : s.improvements) {
      w.open();
      w.field("size", imp.size);
      w.field("seconds", imp.seconds);
      w.close();
    }
    w.close_array();
    w.field("filter_seconds", s.filter_seconds);
    w.field("mc_seconds", s.mc_seconds);
    w.field("vc_seconds", s.vc_seconds);
    w.field("mc_nodes", s.mc_nodes);
    w.field("vc_nodes", s.vc_nodes);
    w.open("kernels");
    w.field("merge", s.kernel_merge);
    w.field("gallop", s.kernel_gallop);
    w.field("hash", s.kernel_hash);
    w.field("hash_batched", s.kernel_hash_batched);
    w.field("bitset_probe", s.kernel_bitset_probe);
    w.field("bitset_word", s.kernel_bitset_word);
    w.field("array_gallop", s.kernel_array_gallop);
    w.field("run_and", s.kernel_run_and);
    w.field("tier", s.simd_tier);
    w.field("word_scalar", s.kernel_word_scalar);
    w.field("word_avx2", s.kernel_word_avx2);
    w.field("word_avx512", s.kernel_word_avx512);
    w.close();
    w.close();
    const auto& g = lz.lazy_graph;
    w.open("lazy_graph");
    w.field("hash_built", g.hash_built);
    w.field("sorted_built", g.sorted_built);
    w.field("bitset_built", g.bitset_built);
    w.field("rows_prebuilt", g.rows_prebuilt);
    w.field("bitset_bytes", g.bitset_bytes);
    w.field("zone_size", g.zone_size);
    w.field("neighbors_kept", g.neighbors_kept);
    w.field("neighbors_filtered", g.neighbors_filtered);
    w.open("hybrid_rows");
    w.field("array", g.hybrid_rows_array);
    w.field("bitset", g.hybrid_rows_bitset);
    w.field("run", g.hybrid_rows_run);
    w.field("array_bytes", g.hybrid_array_bytes);
    w.field("bitset_bytes", g.hybrid_bitset_bytes);
    w.field("run_bytes", g.hybrid_run_bytes);
    w.close();
    w.close();
    // Graceful-degradation counters (failure model): recovered
    // allocation failures, by fallback path.
    w.open("degradations");
    w.field("bitset_rows", g.bitset_degraded);
    w.field("wordsets", s.degraded_wordsets);
    w.field("splits", s.degraded_splits);
    w.close();
  }
  if (!r.fault_sites.empty()) {
    w.open("fault_injection");
    for (const auto& site : r.fault_sites) {
      w.open(site.name);
      w.field("hits", site.hits);
      w.field("fires", site.fires);
      w.field("armed", site.armed);
      w.close();
    }
    w.close();
  }
  w.close();
  out << "\n";
}

}  // namespace lazymc::cli
