// Crash-safe batch/request journal.
//
// One JSON line is appended — and made *durable* — per completed unit of
// work: a batch-sweep instance (solved or timed out) or a daemon request.
// A sweep killed at any point can be resumed with --resume: journaled
// instances are skipped, everything else (including instances that failed
// or were interrupted mid-solve) is re-run.  The file is append-only;
// re-running without --resume simply appends a fresh pass.
//
// Durability: each record is written with O_APPEND semantics through one
// long-lived descriptor and fsync()ed before record() returns, and the
// *directory* is fsync()ed once when the journal file is first created —
// so both the records and the file's existence survive power loss, not
// just process crash.  reopen() closes and re-acquires the descriptor
// (the daemon's SIGHUP handler uses it so an external rotation takes
// effect without a restart).
//
// Line format (self-contained, no trailing state):
//   {"spec": "<graph spec or request id>", "status": "...", "omega": N}
#pragma once

#include <set>
#include <string>

#include "graph/graph.hpp"

namespace lazymc::cli {

class Journal {
 public:
  /// An empty path disables the journal (record/completed become no-ops).
  /// The file is opened lazily on the first record().
  explicit Journal(std::string path) : path_(std::move(path)) {}
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// The specs already journaled as completed (any status).  A missing
  /// file is an empty set (first run); an unreadable or ill-formed file
  /// throws Error(kInput).
  std::set<std::string> completed() const;

  /// Appends one completed-record line and fsync()s it.  Throws
  /// Error(kInput, errno) when the file cannot be opened, written, or
  /// synced.
  void record(const std::string& spec, const std::string& status,
              VertexId omega);

  /// Closes the descriptor; the next record() reopens (and re-creates)
  /// the file.  SIGHUP rotation hook — safe to call at any point between
  /// records.
  void reopen();

 private:
  /// Ensures fd_ is open, creating the file (and fsyncing its directory
  /// on creation) as needed.
  void ensure_open();

  std::string path_;
  int fd_ = -1;
};

}  // namespace lazymc::cli
