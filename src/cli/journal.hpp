// Crash-safe batch journal for manifest sweeps.
//
// One JSON line is appended (and flushed) per *completed* instance —
// solved or timed out — so a sweep killed at any point can be resumed
// with --resume: journaled instances are skipped, everything else
// (including instances that failed or were interrupted mid-solve) is
// re-run.  The file is append-only; re-running without --resume simply
// appends a fresh pass.
//
// Line format (self-contained, no trailing state):
//   {"spec": "<graph spec>", "status": "ok"|"timeout", "omega": N}
#pragma once

#include <set>
#include <string>

#include "graph/graph.hpp"

namespace lazymc::cli {

class Journal {
 public:
  /// An empty path disables the journal (record/completed become no-ops).
  explicit Journal(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// The specs already journaled as completed (any status).  A missing
  /// file is an empty set (first run); an unreadable or ill-formed file
  /// throws Error(kInput).
  std::set<std::string> completed() const;

  /// Appends one completed-instance record and flushes.  Throws
  /// Error(kInput, errno) when the file cannot be opened or written.
  void record(const std::string& spec, const std::string& status,
              VertexId omega) const;

 private:
  std::string path_;
};

}  // namespace lazymc::cli
