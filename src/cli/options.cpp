#include "cli/options.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lazymc::cli {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + "\n\n" + usage());
}

Solver parse_solver(const std::string& name) {
  if (name == "lazymc") return Solver::kLazyMc;
  if (name == "domega" || name == "domega-bs")
    return Solver::kDomegaBinarySearch;
  if (name == "domega-ls") return Solver::kDomegaLinearScan;
  if (name == "mcbrb") return Solver::kMcBrb;
  if (name == "pmc") return Solver::kPmc;
  if (name == "reference") return Solver::kReference;
  if (name == "mce") return Solver::kMce;
  fail("unknown solver '" + name + "'");
}

Order parse_order(const std::string& name) {
  if (name == "coreness") return Order::kCorenessDegree;
  if (name == "peeling") return Order::kPeeling;
  fail("unknown vertex order '" + name + "' (expected coreness|peeling)");
}

Rep parse_rep(const std::string& name) {
  if (name == "auto") return Rep::kAuto;
  if (name == "hash") return Rep::kHash;
  if (name == "sorted") return Rep::kSorted;
  if (name == "bitset") return Rep::kBitset;
  fail("unknown representation '" + name +
       "' (expected auto|hash|sorted|bitset)");
}

}  // namespace

std::string usage() {
  return
      "usage: lazymc --graph <file|gen:name[:scale]> [options]\n"
      "\n"
      "Loads a graph and computes its maximum clique (or enumerates its\n"
      "maximal cliques with --solver mce).\n"
      "\n"
      "graph sources:\n"
      "  <file>               DIMACS .clq/.col or whitespace edge list\n"
      "                       (auto-detected by content)\n"
      "  gen:NAME[:SCALE]     named instance from the synthetic suite;\n"
      "                       SCALE is tiny|small|medium (default small)\n"
      "\n"
      "options:\n"
      "  --solver NAME        lazymc (default), domega | domega-bs,\n"
      "                       domega-ls, mcbrb, pmc, reference, mce\n"
      "  --threads N          worker threads (default: hardware)\n"
      "  --time-limit SECONDS wall-clock limit (default: none; the\n"
      "                       reference solver does not support limits\n"
      "                       and ignores this)\n"
      "  --order KIND         lazymc vertex order: coreness (default) |\n"
      "                       peeling; other solvers use their own order\n"
      "  --rep KIND           lazymc neighborhood representation built on\n"
      "                       first use: auto (default; degree rule +\n"
      "                       bitset rows where cheap) | hash | sorted |\n"
      "                       bitset.  hash/sorted disable bitset rows\n"
      "  --bitset-budget-mb N memory budget for bitset neighborhood rows\n"
      "                       (default 64; 0 disables the representation)\n"
      "  --pre-density        route the MC-vs-VC solver choice on the\n"
      "                       filter-3 edge estimate instead of the\n"
      "                       extracted subgraph's exact density\n"
      "  --json               emit the result as JSON on stdout\n"
      "  --help, -h           print this message\n";
}

std::string solver_name(Solver solver) {
  switch (solver) {
    case Solver::kLazyMc: return "lazymc";
    case Solver::kDomegaLinearScan: return "domega-ls";
    case Solver::kDomegaBinarySearch: return "domega-bs";
    case Solver::kMcBrb: return "mcbrb";
    case Solver::kPmc: return "pmc";
    case Solver::kReference: return "reference";
    case Solver::kMce: return "mce";
  }
  return "?";
}

Options parse_options(int argc, char** argv, bool& wants_help) {
  Options options;
  wants_help = false;
  auto value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) fail("missing value for " + flag);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      wants_help = true;
      return options;
    } else if (arg == "--graph") {
      options.graph_spec = value(i, arg);
    } else if (arg == "--solver") {
      options.solver = parse_solver(value(i, arg));
    } else if (arg == "--order") {
      options.order = parse_order(value(i, arg));
    } else if (arg == "--rep") {
      options.rep = parse_rep(value(i, arg));
    } else if (arg == "--bitset-budget-mb") {
      const std::string v = value(i, arg);
      char* end = nullptr;
      long n = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n < 0) {
        fail("--bitset-budget-mb expects a non-negative integer, got '" + v +
             "'");
      }
      options.bitset_budget_mb = static_cast<std::size_t>(n);
    } else if (arg == "--pre-density") {
      options.pre_extraction_density = true;
    } else if (arg == "--threads") {
      const std::string v = value(i, arg);
      char* end = nullptr;
      long n = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n < 0) {
        fail("--threads expects a non-negative integer, got '" + v + "'");
      }
      options.threads = static_cast<std::size_t>(n);
    } else if (arg == "--time-limit") {
      const std::string v = value(i, arg);
      char* end = nullptr;
      double s = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || s <= 0) {
        fail("--time-limit expects a positive number of seconds, got '" + v +
             "'");
      }
      options.time_limit_seconds = s;
    } else if (arg == "--json") {
      options.json = true;
    } else {
      fail("unknown argument '" + arg + "'");
    }
  }
  if (options.graph_spec.empty()) fail("--graph is required");
  return options;
}

}  // namespace lazymc::cli
