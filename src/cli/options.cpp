#include "cli/options.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "support/error.hpp"

namespace lazymc::cli {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(ErrorKind::kInput, what + "\n\n" + usage());
}

Solver parse_solver(const std::string& name) {
  if (name == "lazymc") return Solver::kLazyMc;
  if (name == "domega" || name == "domega-bs")
    return Solver::kDomegaBinarySearch;
  if (name == "domega-ls") return Solver::kDomegaLinearScan;
  if (name == "mcbrb") return Solver::kMcBrb;
  if (name == "pmc") return Solver::kPmc;
  if (name == "reference") return Solver::kReference;
  if (name == "mce") return Solver::kMce;
  fail("unknown solver '" + name + "'");
}

Order parse_order(const std::string& name) {
  if (name == "coreness") return Order::kCorenessDegree;
  if (name == "peeling") return Order::kPeeling;
  fail("unknown vertex order '" + name + "' (expected coreness|peeling)");
}

Rep parse_rep(const std::string& name) {
  if (name == "auto") return Rep::kAuto;
  if (name == "hash") return Rep::kHash;
  if (name == "sorted") return Rep::kSorted;
  if (name == "bitset") return Rep::kBitset;
  if (name == "hybrid") return Rep::kHybrid;
  fail("unknown representation '" + name +
       "' (expected auto|hash|sorted|bitset|hybrid)");
}

Split parse_split(const std::string& name) {
  if (name == "auto") return Split::kAuto;
  if (name == "on") return Split::kOn;
  if (name == "off") return Split::kOff;
  fail("unknown split mode '" + name + "' (expected auto|on|off)");
}

Kernels parse_kernels(const std::string& name) {
  if (name == "auto") return Kernels::kAuto;
  if (name == "scalar") return Kernels::kScalar;
  if (name == "avx2") return Kernels::kAvx2;
  if (name == "avx512") return Kernels::kAvx512;
  fail("unknown kernel tier '" + name +
       "' (expected auto|scalar|avx2|avx512)");
}

std::size_t parse_size(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  long n = std::strtol(v.c_str(), &end, 10);
  // Bounding by INT_MAX also keeps later narrowing (e.g. split_depth to
  // unsigned) exact; no flag has a meaningful value anywhere near it.
  if (end == v.c_str() || *end != '\0' || n < 0 || errno == ERANGE ||
      n > std::numeric_limits<int>::max()) {
    fail(flag + " expects a non-negative integer, got '" + v + "'");
  }
  return static_cast<std::size_t>(n);
}

double parse_positive_double(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE || !(x > 0)) {
    fail(flag + " expects a positive number, got '" + v + "'");
  }
  return x;
}

}  // namespace

std::string usage() {
  return
      "usage: lazymc --graph <file|gen:name[:scale]> [options]\n"
      "\n"
      "Loads a graph and computes its maximum clique (or enumerates its\n"
      "maximal cliques with --solver mce).  --graph may repeat, and\n"
      "--manifest adds one spec per line from a file; with more than one\n"
      "instance the driver runs them all and streams one JSON object per\n"
      "instance (batch mode, for corpus-wide sweeps).\n"
      "\n"
      "graph sources:\n"
      "  <file>               DIMACS .clq/.col or whitespace edge list\n"
      "                       (auto-detected by content)\n"
      "  gen:NAME[:SCALE]     named instance from the synthetic suite;\n"
      "                       SCALE is tiny|small|medium (default small)\n"
      "\n"
      "options:\n"
      "  --manifest FILE      file of graph specs, one per line ('#'\n"
      "                       starts a comment, blank lines skipped)\n"
      "  --solver NAME        lazymc (default), domega | domega-bs,\n"
      "                       domega-ls, mcbrb, pmc, reference, mce\n"
      "  --threads N          worker threads (default: hardware)\n"
      "  --time-limit SECONDS wall-clock limit (default: none; the\n"
      "                       reference solver does not support limits\n"
      "                       and ignores this)\n"
      "  --order KIND         lazymc vertex order: coreness (default) |\n"
      "                       peeling; other solvers use their own order\n"
      "  --rep KIND           lazymc neighborhood representation built on\n"
      "                       first use: auto (default; degree rule +\n"
      "                       bitset rows where cheap) | hash | sorted |\n"
      "                       bitset | hybrid (Roaring-style per-row\n"
      "                       array/bitset/run containers).  hash/sorted\n"
      "                       disable zone rows entirely\n"
      "  --bitset-budget-mb N memory budget for bitset/hybrid rows\n"
      "                       (default 64; 0 disables the representation)\n"
      "  --hybrid-array-max N max in-zone degree stored as a sorted array\n"
      "                       container (default 4096; --rep hybrid)\n"
      "  --hybrid-run-min-saving X\n"
      "                       pick the run container only when >= X times\n"
      "                       smaller than the dense alternative\n"
      "                       (default 2.0; --rep hybrid)\n"
      "  --pre-density        route the MC-vs-VC solver choice on the\n"
      "                       filter-3 edge estimate instead of the\n"
      "                       extracted subgraph's exact density\n"
      "  --split MODE         decompose oversized B&B subproblems into\n"
      "                       stealable tasks on the shared work queue:\n"
      "                       auto (default; only when >1 thread) | on |\n"
      "                       off\n"
      "  --split-depth N      maximum split generations (default 2;\n"
      "                       0 disables splitting)\n"
      "  --split-min-cands N  minimum candidate-set size for a frame to\n"
      "                       be carved into a task (default 128)\n"
      "  --split-min-work N   gate task carving on the work estimate\n"
      "                       candidates x density >= N instead of the raw\n"
      "                       candidate count (default 0 = count rule)\n"
      "  --kernels TIER       SIMD tier for the word-parallel kernels:\n"
      "                       auto (default; best of build + CPU) |\n"
      "                       scalar | avx2 | avx512 (forced tiers fail\n"
      "                       when not compiled in / CPU-supported)\n"
      "  --json               emit the result as JSON on stdout\n"
      "                       (implied by batch mode)\n"
      "  --journal FILE       batch mode: append one JSON line per\n"
      "                       completed instance (crash-safe results log)\n"
      "  --resume             batch mode: skip instances already recorded\n"
      "                       in the --journal file (requires --journal)\n"
      "  --retries N          retry an instance up to N times after a\n"
      "                       transient (resource) failure, with capped\n"
      "                       exponential backoff (default 0)\n"
      "  --fault SPEC         arm fault-injection sites (repeatable);\n"
      "                       SPEC is site=nth:N | site=every:K |\n"
      "                       site=prob:P[:seed], comma-separable.  Also\n"
      "                       read from the LAZYMC_FAULTS environment\n"
      "                       variable.  Requires a -DLAZYMC_FAULTS=ON\n"
      "                       build; see src/support/faultinject.hpp\n"
      "  --help, -h           print this message\n"
      "\n"
      "exit codes:\n"
      "  0  solved (batch: every instance solved or timed out)\n"
      "  2  the --time-limit expired (single instance; the report still\n"
      "     carries the best clique found and timed_out: true)\n"
      "  3  input error (bad flags, unreadable/ill-formed graph or\n"
      "     manifest, bad fault spec)\n"
      "  4  internal or resource error (unexpected exception, failed\n"
      "     witness verification, out of memory after retries)\n"
      "  5  batch completed but some instances failed (each failure is\n"
      "     reported as a JSON error object with error_kind/attempts)\n"
      "  6  interrupted by SIGINT/SIGTERM (the in-flight instance still\n"
      "     emits best-so-far JSON with interrupted: true)\n";
}

std::string solver_name(Solver solver) {
  switch (solver) {
    case Solver::kLazyMc: return "lazymc";
    case Solver::kDomegaLinearScan: return "domega-ls";
    case Solver::kDomegaBinarySearch: return "domega-bs";
    case Solver::kMcBrb: return "mcbrb";
    case Solver::kPmc: return "pmc";
    case Solver::kReference: return "reference";
    case Solver::kMce: return "mce";
  }
  return "?";
}

Options parse_options(int argc, char** argv, bool& wants_help) {
  Options options;
  wants_help = false;
  auto value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) fail("missing value for " + flag);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      wants_help = true;
      return options;
    } else if (arg == "--graph") {
      options.graph_specs.push_back(value(i, arg));
    } else if (arg == "--manifest") {
      options.manifest_path = value(i, arg);
    } else if (arg == "--solver") {
      options.solver = parse_solver(value(i, arg));
    } else if (arg == "--order") {
      options.order = parse_order(value(i, arg));
    } else if (arg == "--rep") {
      options.rep = parse_rep(value(i, arg));
    } else if (arg == "--bitset-budget-mb") {
      options.bitset_budget_mb = parse_size(arg, value(i, arg));
    } else if (arg == "--hybrid-array-max") {
      options.hybrid_array_max = parse_size(arg, value(i, arg));
    } else if (arg == "--hybrid-run-min-saving") {
      options.hybrid_run_min_saving = parse_positive_double(arg, value(i, arg));
    } else if (arg == "--pre-density") {
      options.pre_extraction_density = true;
    } else if (arg == "--split") {
      options.split = parse_split(value(i, arg));
    } else if (arg == "--split-depth") {
      options.split_depth = parse_size(arg, value(i, arg));
    } else if (arg == "--split-min-cands") {
      options.split_min_cands = parse_size(arg, value(i, arg));
    } else if (arg == "--split-min-work") {
      options.split_min_work = parse_size(arg, value(i, arg));
    } else if (arg == "--kernels") {
      options.kernels = parse_kernels(value(i, arg));
    } else if (arg == "--threads") {
      options.threads = parse_size(arg, value(i, arg));
    } else if (arg == "--time-limit") {
      const std::string v = value(i, arg);
      char* end = nullptr;
      double s = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || s <= 0) {
        fail("--time-limit expects a positive number of seconds, got '" + v +
             "'");
      }
      options.time_limit_seconds = s;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--journal") {
      options.journal_path = value(i, arg);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--retries") {
      options.retries = parse_size(arg, value(i, arg));
    } else if (arg == "--fault") {
      options.fault_specs.push_back(value(i, arg));
    } else {
      fail("unknown argument '" + arg + "'");
    }
  }
  if (options.graph_specs.empty() && options.manifest_path.empty()) {
    fail("--graph or --manifest is required");
  }
  if (options.resume && options.journal_path.empty()) {
    fail("--resume requires --journal (there is nothing to resume from)");
  }
  return options;
}

}  // namespace lazymc::cli
