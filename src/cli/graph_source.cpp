#include "cli/graph_source.hpp"

#include <fstream>
#include <stdexcept>

#include "graph/io.hpp"
#include "graph/suite.hpp"
#include "support/timer.hpp"

namespace lazymc::cli {
namespace {

suite::Scale parse_scale(const std::string& name) {
  if (name == "tiny") return suite::Scale::kTiny;
  if (name == "small") return suite::Scale::kSmall;
  if (name == "medium") return suite::Scale::kMedium;
  throw std::runtime_error("unknown suite scale '" + name +
                           "' (expected tiny|small|medium)");
}

std::string scale_name(suite::Scale scale) {
  switch (scale) {
    case suite::Scale::kTiny: return "tiny";
    case suite::Scale::kSmall: return "small";
    case suite::Scale::kMedium: return "medium";
  }
  return "?";
}

LoadedGraph load_generated(const std::string& spec) {
  // spec is "gen:NAME[:SCALE]".
  std::string rest = spec.substr(4);
  suite::Scale scale = suite::Scale::kSmall;
  if (auto colon = rest.find(':'); colon != std::string::npos) {
    scale = parse_scale(rest.substr(colon + 1));
    rest.resize(colon);
  }
  if (rest.empty()) {
    std::string names;
    for (const auto& name : suite::instance_names()) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    throw std::runtime_error("empty generator name; known instances: " +
                             names);
  }
  WallTimer timer;
  suite::Instance instance = suite::make_instance(rest, scale);
  LoadedGraph loaded;
  loaded.graph = std::move(instance.graph);
  loaded.description = "gen:" + rest + ":" + scale_name(scale);
  loaded.load_seconds = timer.elapsed();
  loaded.load_path = "gen";
  return loaded;
}

}  // namespace

LoadedGraph load_graph(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) return load_generated(spec);
  WallTimer timer;
  LoadedGraph loaded;
  if (store::is_lmg_file(spec)) {
    // Keep the view: it carries the stored order/coreness/rows the solve
    // consumes via mc::PrebuiltGraph, on top of backing the CSR spans.
    auto view = store::BinaryGraphView::open(spec);
    loaded.graph = view->graph();
    loaded.store = std::move(view);
    loaded.load_path = "mmap";
  } else {
    loaded.graph = io::read_graph_file(spec);
  }
  loaded.description = "file:" + spec;
  loaded.load_seconds = timer.elapsed();
  return loaded;
}

std::vector<std::string> read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open manifest file '" + path + "'");
  }
  std::vector<std::string> specs;
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    specs.push_back(line.substr(first, last - first + 1));
  }
  return specs;
}

}  // namespace lazymc::cli
