// Command-line options for the `lazymc` driver binary.
//
// Usage:
//   lazymc --graph <file|gen:name[:scale]> [--graph ...] [--manifest FILE]
//          [--solver NAME] [--threads N] [--time-limit SECONDS]
//          [--order coreness|peeling]
//          [--rep auto|hash|sorted|bitset|hybrid] [--bitset-budget-mb N]
//          [--hybrid-array-max N] [--hybrid-run-min-saving X]
//          [--pre-density]
//          [--split auto|on|off] [--split-depth N] [--split-min-cands N]
//          [--split-min-work N] [--kernels auto|scalar|avx2|avx512]
//          [--json] [--journal FILE] [--resume] [--retries N]
//          [--fault SPEC]
//
// `--graph` may repeat and `--manifest` names a file with one graph spec
// per line; with more than one instance the driver runs them all in
// sequence and streams one JSON object per instance (batch mode).
//
// Solvers: lazymc (default), domega (alias domega-bs), domega-ls, mcbrb,
// pmc, reference, mce.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace lazymc::cli {

enum class Solver {
  kLazyMc,
  kDomegaLinearScan,
  kDomegaBinarySearch,
  kMcBrb,
  kPmc,
  kReference,
  kMce,
};

enum class Order { kCorenessDegree, kPeeling };

/// Lazy-graph neighborhood representation (lazymc solver only); mirrors
/// lazymc::NeighborhoodRep.
enum class Rep { kAuto, kHash, kSorted, kBitset, kHybrid };

/// Subproblem-splitting mode (lazymc solver only); mirrors mc::SplitMode.
enum class Split { kAuto, kOn, kOff };

/// SIMD kernel tier for the word-parallel kernels (lazymc solver only):
/// auto picks the best tier the build and CPU support; the rest force one
/// for A/B runs and fail when unavailable.
enum class Kernels { kAuto, kScalar, kAvx2, kAvx512 };

struct Options {
  /// One entry per --graph flag (file path or "gen:name[:scale]").
  std::vector<std::string> graph_specs;
  /// File with one graph spec per line ('#' comments, blanks skipped);
  /// resolved by the driver and appended after graph_specs.
  std::string manifest_path;
  Solver solver = Solver::kLazyMc;
  Order order = Order::kCorenessDegree;
  Rep rep = Rep::kAuto;
  std::size_t bitset_budget_mb = 64;  // 0 disables bitset/hybrid rows
  /// Hybrid-row container thresholds (--rep hybrid only).
  std::size_t hybrid_array_max = 4096;
  double hybrid_run_min_saving = 2.0;
  bool pre_extraction_density = false;
  Split split = Split::kAuto;
  std::size_t split_depth = 2;       // 0 disables splitting
  std::size_t split_min_cands = 128;
  std::size_t split_min_work = 0;    // 0 = count rule, >0 = work estimate
  Kernels kernels = Kernels::kAuto;
  std::size_t threads = 0;  // 0 = hardware default
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  bool json = false;
  /// Fault-injection specs (one per --fault flag), applied in order after
  /// the LAZYMC_FAULTS environment variable.  Rejected (input error) when
  /// the binary was built without -DLAZYMC_FAULTS=ON.
  std::vector<std::string> fault_specs;
  /// Batch journal: append one line per completed instance; with
  /// --resume, instances already journaled are skipped.
  std::string journal_path;
  bool resume = false;
  /// Retries for transient (resource) per-instance failures, with capped
  /// exponential backoff.
  std::size_t retries = 0;
};

/// Returns the usage string (also printed by --help).
std::string usage();

/// Parses argv.  Throws std::runtime_error with a message on bad input;
/// sets `wants_help` when --help/-h was given (caller prints usage, exits 0).
Options parse_options(int argc, char** argv, bool& wants_help);

/// Human-readable solver name (matches the --solver spelling).
std::string solver_name(Solver solver);

}  // namespace lazymc::cli
