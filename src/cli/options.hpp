// Command-line options for the `lazymc` driver binary.
//
// Usage:
//   lazymc --graph <file|gen:name[:scale]> [--solver NAME] [--threads N]
//          [--time-limit SECONDS] [--order coreness|peeling] [--json]
//
// Solvers: lazymc (default), domega (alias domega-bs), domega-ls, mcbrb,
// pmc, reference, mce.
#pragma once

#include <limits>
#include <string>

namespace lazymc::cli {

enum class Solver {
  kLazyMc,
  kDomegaLinearScan,
  kDomegaBinarySearch,
  kMcBrb,
  kPmc,
  kReference,
  kMce,
};

enum class Order { kCorenessDegree, kPeeling };

struct Options {
  std::string graph_spec;  // file path or "gen:name[:scale]"
  Solver solver = Solver::kLazyMc;
  Order order = Order::kCorenessDegree;
  std::size_t threads = 0;  // 0 = hardware default
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  bool json = false;
};

/// Returns the usage string (also printed by --help).
std::string usage();

/// Parses argv.  Throws std::runtime_error with a message on bad input;
/// sets `wants_help` when --help/-h was given (caller prints usage, exits 0).
Options parse_options(int argc, char** argv, bool& wants_help);

/// Human-readable solver name (matches the --solver spelling).
std::string solver_name(Solver solver);

}  // namespace lazymc::cli
