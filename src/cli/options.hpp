// Command-line options for the `lazymc` driver binary.
//
// Usage:
//   lazymc --graph <file|gen:name[:scale]> [--solver NAME] [--threads N]
//          [--time-limit SECONDS] [--order coreness|peeling]
//          [--rep auto|hash|sorted|bitset] [--bitset-budget-mb N]
//          [--pre-density] [--json]
//
// Solvers: lazymc (default), domega (alias domega-bs), domega-ls, mcbrb,
// pmc, reference, mce.
#pragma once

#include <limits>
#include <string>

namespace lazymc::cli {

enum class Solver {
  kLazyMc,
  kDomegaLinearScan,
  kDomegaBinarySearch,
  kMcBrb,
  kPmc,
  kReference,
  kMce,
};

enum class Order { kCorenessDegree, kPeeling };

/// Lazy-graph neighborhood representation (lazymc solver only); mirrors
/// lazymc::NeighborhoodRep.
enum class Rep { kAuto, kHash, kSorted, kBitset };

struct Options {
  std::string graph_spec;  // file path or "gen:name[:scale]"
  Solver solver = Solver::kLazyMc;
  Order order = Order::kCorenessDegree;
  Rep rep = Rep::kAuto;
  std::size_t bitset_budget_mb = 64;  // 0 disables bitset rows
  bool pre_extraction_density = false;
  std::size_t threads = 0;  // 0 = hardware default
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  bool json = false;
};

/// Returns the usage string (also printed by --help).
std::string usage();

/// Parses argv.  Throws std::runtime_error with a message on bad input;
/// sets `wants_help` when --help/-h was given (caller prints usage, exits 0).
Options parse_options(int argc, char** argv, bool& wants_help);

/// Human-readable solver name (matches the --solver spelling).
std::string solver_name(Solver solver);

}  // namespace lazymc::cli
