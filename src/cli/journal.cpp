#include "cli/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/jsonmini.hpp"

namespace lazymc::cli {
namespace {

/// fsync the directory containing `path`, so the journal file's very
/// existence (its directory entry) is durable.  Failure is surfaced: a
/// journal that silently cannot be made durable is worse than no journal.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    throw Error(ErrorKind::kInput,
                "cannot open journal directory '" + dir + "' for fsync",
                errno);
  }
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    throw Error(ErrorKind::kInput,
                "fsync of journal directory '" + dir + "' failed",
                saved_errno);
  }
}

}  // namespace

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::set<std::string> Journal::completed() const {
  std::set<std::string> done;
  if (!enabled()) return done;
  std::ifstream in(path_);
  if (!in) return done;  // no journal yet: nothing completed
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string spec;
    if (!json_get_string(line, "spec", spec)) {
      throw Error(ErrorKind::kInput,
                  "journal '" + path_ + "' line " +
                      std::to_string(line_no) +
                      " is not a journal record: " + line);
    }
    done.insert(spec);
  }
  return done;
}

void Journal::ensure_open() {
  if (fd_ >= 0) return;
  // Probe first so we know whether open() created the file: only a
  // creation needs the directory fsync.
  struct stat st;
  const bool existed = ::stat(path_.c_str(), &st) == 0;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw Error(ErrorKind::kInput,
                "cannot open journal '" + path_ + "' for append", errno);
  }
  if (!existed) fsync_parent_dir(path_);
}

void Journal::reopen() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::record(const std::string& spec, const std::string& status,
                     VertexId omega) {
  if (!enabled()) return;
  ensure_open();
  std::ostringstream buf;
  JsonWriter w(buf);
  w.open();
  w.field("spec", spec);
  w.field("status", status);
  w.field("omega", omega);
  w.close();
  buf << '\n';
  const std::string line = buf.str();
  // One full-line write (O_APPEND keeps concurrent writers' lines whole),
  // then fsync so the record survives power loss before we report the
  // instance as journaled.
  std::size_t off = 0;
  while (off < line.size()) {
    const ::ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorKind::kInput,
                  "write to journal '" + path_ + "' failed", errno);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw Error(ErrorKind::kInput,
                "fsync of journal '" + path_ + "' failed", errno);
  }
}

}  // namespace lazymc::cli
