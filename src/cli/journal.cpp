#include "cli/journal.hpp"

#include <cerrno>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace lazymc::cli {
namespace {

// Extracts and unescapes the value of `"key": "..."` from one journal
// line.  The journal writes its own lines through JsonWriter, so only
// the escapes it produces need decoding.  Returns false when absent.
bool extract_string(const std::string& line, const std::string& key,
                    std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= line.size()) break;
    switch (line[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        const std::string hex = line.substr(i + 1, 4);
        out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

}  // namespace

std::set<std::string> Journal::completed() const {
  std::set<std::string> done;
  if (!enabled()) return done;
  std::ifstream in(path_);
  if (!in) return done;  // no journal yet: nothing completed
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string spec;
    if (!extract_string(line, "spec", spec)) {
      throw Error(ErrorKind::kInput,
                  "journal '" + path_ + "' line " +
                      std::to_string(line_no) +
                      " is not a journal record: " + line);
    }
    done.insert(spec);
  }
  return done;
}

void Journal::record(const std::string& spec, const std::string& status,
                     VertexId omega) const {
  if (!enabled()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw Error(ErrorKind::kInput,
                "cannot open journal '" + path_ + "' for append", errno);
  }
  std::ostringstream line;
  JsonWriter w(line);
  w.open();
  w.field("spec", spec);
  w.field("status", status);
  w.field("omega", omega);
  w.close();
  out << line.str() << '\n' << std::flush;
  if (!out) {
    throw Error(ErrorKind::kInput,
                "write to journal '" + path_ + "' failed", errno);
  }
}

}  // namespace lazymc::cli
