// Resolves the driver's --graph spec into a Graph.
//
// Two kinds of spec:
//  * a file path — a `.lmg` binary store (mmap'ed zero-copy), DIMACS, or
//    edge list, auto-detected by content;
//  * "gen:NAME[:SCALE]" — a named instance of the synthetic suite
//    (graph/suite.hpp), SCALE in {tiny, small, medium}, default small.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "store/binary_graph.hpp"

namespace lazymc::cli {

struct LoadedGraph {
  Graph graph;
  std::string description;  // e.g. "file:foo.clq" or "gen:dblp:small"
  double load_seconds = 0;
  /// How the graph materialized: "parse" (text formats), "mmap" (binary
  /// store), or "gen" (synthetic suite).  Reported so benchmarks and the
  /// daemon status can tell the load paths apart.
  std::string load_path = "parse";
  /// Set on the mmap path: the store view backing `graph`, carrying the
  /// precomputed order/coreness and prebuilt rows for mc::PrebuiltGraph.
  std::shared_ptr<const store::BinaryGraphView> store;
};

/// Loads the graph named by `spec`.  Throws std::runtime_error with a
/// usable message on unknown generator names or unreadable files.
LoadedGraph load_graph(const std::string& spec);

/// Reads a batch manifest: one graph spec per line, with blank lines and
/// '#' comments (full-line or trailing) skipped and surrounding
/// whitespace trimmed.  Throws std::runtime_error when the file cannot
/// be opened.
std::vector<std::string> read_manifest(const std::string& path);

}  // namespace lazymc::cli
