#include "baselines/pmc.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/bb_solver.hpp"
#include "mc/incumbent.hpp"
#include "support/control.hpp"
#include "support/parallel.hpp"

namespace lazymc::baselines {

BaselineResult pmc_solve(const Graph& g, const PmcOptions& options) {
  BaselineResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;

  SolveControl control(options.time_limit_seconds);

  // Full k-core decomposition and an *eagerly* relabelled graph — the
  // up-front cost LazyMC's lazy representation avoids.
  kcore::CoreDecomposition core = kcore::coreness(g);
  kcore::VertexOrder order = kcore::order_by_coreness_degree(g, core.coreness);
  Graph relabelled = kcore::relabel(g, order);

  std::vector<VertexId> coreness_new(n);
  for (VertexId v = 0; v < n; ++v) {
    coreness_new[v] = core.coreness[order.new_to_orig[v]];
  }

  Incumbent incumbent;

  // Coreness-based heuristic: greedy growth from the first vertex of each
  // coreness level, taking the highest-numbered candidate each step.
  {
    std::vector<VertexId> seeds;
    VertexId prev = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (coreness_new[v] != prev) {
        seeds.push_back(v);
        prev = coreness_new[v];
      }
    }
    parallel_for(0, seeds.size(), [&](std::size_t i) {
      std::uint64_t stop_counter = 0;
      if (control.should_stop(stop_counter)) return;
      VertexId v = seeds[i];
      auto nbrs = relabelled.neighbors(v);
      std::vector<VertexId> candidates(
          std::upper_bound(nbrs.begin(), nbrs.end(), v), nbrs.end());
      std::vector<VertexId> clique{v};
      std::vector<VertexId> buffer(candidates.size());
      while (!candidates.empty()) {
        VertexId u = candidates.back();
        candidates.pop_back();
        clique.push_back(u);
        auto u_nbrs = relabelled.neighbors(u);
        std::size_t kept = intersect_sorted(candidates, u_nbrs, buffer.data());
        candidates.assign(buffer.begin(), buffer.begin() + kept);
      }
      std::vector<VertexId> orig;
      orig.reserve(clique.size());
      for (VertexId u : clique) orig.push_back(order.new_to_orig[u]);
      incumbent.offer(orig);
    }, 1);
  }

  // Systematic search: all vertices, high coreness first, right
  // neighborhoods solved by coloring B&B.  Only the coreness pruning rule
  // is applied before searching (no advance degree filtering).
  {
    std::vector<VertexId> verts(n);
    for (VertexId v = 0; v < n; ++v) verts[v] = n - 1 - v;  // high first
    parallel_for(0, n, [&](std::size_t i) {
      if (control.cancelled()) return;
      VertexId v = verts[i];
      VertexId bound = incumbent.size();
      if (coreness_new[v] < bound) return;
      auto nbrs = relabelled.neighbors(v);
      std::vector<VertexId> right(
          std::upper_bound(nbrs.begin(), nbrs.end(), v), nbrs.end());
      if (right.size() < bound) return;
      DenseSubgraph sub = induce_dense(relabelled, right);
      mc::BBOptions opt;
      opt.lower_bound = bound > 0 ? bound - 1 : 0;
      opt.live_bound = nullptr;
      opt.control = &control;
      mc::BBResult r = mc::solve_mc_dense(sub, opt);
      if (!r.clique.empty()) {
        std::vector<VertexId> clique{order.new_to_orig[v]};
        for (VertexId local : r.clique) {
          clique.push_back(order.new_to_orig[sub.vertices[local]]);
        }
        incumbent.offer(clique);
      }
    }, 1);
  }

  result.clique = incumbent.snapshot();
  std::sort(result.clique.begin(), result.clique.end());
  result.omega = static_cast<VertexId>(result.clique.size());
  result.timed_out = control.cancelled();
  return result;
}

}  // namespace lazymc::baselines
