// MC-BRB-like baseline (Chang, KDD'19): sequential branch-reduce-bound
// maximum clique computation over large sparse graphs.
//
// Structure mirrored from the original:
//  * a degree-based heuristic primes the incumbent before any ordering
//    work (obtained "for free" relative to LazyMC's parallel pipeline);
//  * the sequential k-core computation yields the degeneracy peeling
//    order at no extra cost;
//  * for each vertex in peeling order the ego network is extracted and
//    *reduced to a fixpoint* (degree-based reductions), transforming the
//    problem into an (|C*|+1)-clique decision on a small dense kernel;
//  * kernels are solved by coloring branch-and-bound.
#pragma once

#include <limits>

#include "baselines/pmc.hpp"  // BaselineResult
#include "graph/graph.hpp"

namespace lazymc::baselines {

struct McBrbOptions {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  VertexId heuristic_top_k = 16;
};

/// Sequential, like the original.
BaselineResult mcbrb_solve(const Graph& g, const McBrbOptions& options = {});

}  // namespace lazymc::baselines
