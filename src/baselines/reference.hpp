// Reference exact solvers used by tests and as a sanity baseline.
//
// `max_clique_reference` runs the coloring B&B over the whole graph (fine
// up to a few thousand vertices).  `max_clique_naive` enumerates subsets
// (exponential; n <= ~24) and is deliberately independent of every other
// code path so it can arbitrate disagreements in property tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lazymc::baselines {

/// Exact maximum clique (original ids, sorted).  Intended for graphs small
/// enough to induce densely (n up to a few thousand).
std::vector<VertexId> max_clique_reference(const Graph& g);

/// Exact maximum clique by subset enumeration; requires n <= 24.
std::vector<VertexId> max_clique_naive(const Graph& g);

}  // namespace lazymc::baselines
