#include "baselines/mcbrb.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/bb_solver.hpp"
#include "support/control.hpp"

namespace lazymc::baselines {
namespace {

/// Degree-based greedy clique from the top-K degree seeds (sequential).
std::vector<VertexId> degree_heuristic(const Graph& g, VertexId top_k,
                                       const SolveControl& control) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> seeds(n);
  for (VertexId v = 0; v < n; ++v) seeds[v] = v;
  VertexId k = std::min<VertexId>(top_k, n);
  std::partial_sort(
      seeds.begin(), seeds.begin() + k, seeds.end(),
      [&](VertexId a, VertexId b) { return g.degree(a) > g.degree(b); });
  std::vector<VertexId> best;
  for (VertexId i = 0; i < k && !control.cancelled(); ++i) {
    VertexId v = seeds[i];
    std::vector<VertexId> clique{v};
    auto nbrs = g.neighbors(v);
    std::vector<VertexId> candidates(nbrs.begin(), nbrs.end());
    std::vector<VertexId> buffer(candidates.size());
    while (!candidates.empty()) {
      // Take the highest-degree candidate.
      VertexId u = *std::max_element(
          candidates.begin(), candidates.end(),
          [&](VertexId a, VertexId b) { return g.degree(a) < g.degree(b); });
      clique.push_back(u);
      std::erase(candidates, u);
      std::size_t kept =
          intersect_sorted(candidates, g.neighbors(u), buffer.data());
      candidates.assign(buffer.begin(), buffer.begin() + kept);
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  return best;
}

}  // namespace

BaselineResult mcbrb_solve(const Graph& g, const McBrbOptions& options) {
  BaselineResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;

  SolveControl control(options.time_limit_seconds);

  std::vector<VertexId> best =
      degree_heuristic(g, options.heuristic_top_k, control);

  // Sequential k-core: peeling order for free.
  kcore::CoreDecomposition core = kcore::coreness(g);

  std::vector<VertexId> peel_pos(n);
  for (VertexId i = 0; i < n; ++i) peel_pos[core.peel_order[i]] = i;

  // Ego-network search in peeling order.
  for (VertexId idx = 0; idx < n && !control.cancelled(); ++idx) {
    VertexId v = core.peel_order[idx];
    VertexId bound = static_cast<VertexId>(best.size());
    if (core.coreness[v] < bound) continue;

    // Right-neighborhood w.r.t. the peeling order: neighbors peeled later,
    // restricted to members with sufficient coreness.
    std::vector<VertexId> ego;
    ego.reserve(g.degree(v));
    for (VertexId u : g.neighbors(v)) {
      if (peel_pos[u] > peel_pos[v] && core.coreness[u] >= bound) {
        ego.push_back(u);
      }
    }
    if (ego.size() < bound) continue;

    // Reduce to a fixpoint: drop members whose induced degree cannot
    // support a clique of size bound+1 through v.
    DenseSubgraph sub = induce_dense(g, ego);
    DynamicBitset alive(sub.size());
    for (std::size_t i = 0; i < sub.size(); ++i) alive.set(i);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = alive.find_first(); i < alive.size();
           i = alive.find_next(i)) {
        // Need >= bound - 1 neighbors inside the kernel (plus u and v
        // gives bound + 1 total).
        if (sub.adj[i].count_and(alive) + 2 <= bound) {
          alive.reset(i);
          changed = true;
        }
      }
    }
    std::vector<VertexId> kernel;
    alive.for_each([&](std::size_t i) {
      kernel.push_back(sub.vertices[i]);
    });
    if (kernel.size() < bound) continue;

    DenseSubgraph kernel_sub = induce_dense(g, kernel);
    mc::BBOptions opt;
    opt.lower_bound = bound > 0 ? bound - 1 : 0;
    opt.control = &control;
    mc::BBResult r = mc::solve_mc_dense(kernel_sub, opt);
    if (!r.clique.empty()) {
      std::vector<VertexId> clique{v};
      for (VertexId local : r.clique) {
        clique.push_back(kernel_sub.vertices[local]);
      }
      if (clique.size() > best.size()) best = std::move(clique);
    }
  }

  result.clique = std::move(best);
  std::sort(result.clique.begin(), result.clique.end());
  result.omega = static_cast<VertexId>(result.clique.size());
  result.timed_out = control.cancelled();
  return result;
}

}  // namespace lazymc::baselines
