#include "baselines/domega.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "support/control.hpp"
#include "vc/mc_via_vc.hpp"

namespace lazymc::baselines {
namespace {

/// Greedy clique from the highest-coreness vertex, used as the lower
/// bound priming both gap-search strategies.
std::vector<VertexId> greedy_clique(const Graph& relabelled,
                                    const std::vector<VertexId>& coreness_new) {
  const VertexId n = relabelled.num_vertices();
  if (n == 0) return {};
  VertexId v = n - 1;  // highest coreness after relabelling
  (void)coreness_new;
  std::vector<VertexId> clique{v};
  auto nbrs = relabelled.neighbors(v);
  std::vector<VertexId> candidates(nbrs.begin(), nbrs.end());
  while (!candidates.empty()) {
    VertexId u = candidates.back();
    candidates.pop_back();
    clique.push_back(u);
    auto u_nbrs = relabelled.neighbors(u);
    std::vector<VertexId> next;
    std::set_intersection(candidates.begin(), candidates.end(),
                          u_nbrs.begin(), u_nbrs.end(),
                          std::back_inserter(next));
    candidates = std::move(next);
  }
  return clique;
}

/// Decides whether a clique of size >= target exists; if so returns it
/// (relabelled ids).  Scans ego networks of eligible vertices and decides
/// each with k-VC on the complement.
std::vector<VertexId> find_clique_of_size(
    const Graph& relabelled, const std::vector<VertexId>& coreness_new,
    VertexId target, const SolveControl& control) {
  const VertexId n = relabelled.num_vertices();
  if (target <= 1) return n > 0 ? std::vector<VertexId>{0} : std::vector<VertexId>{};
  for (VertexId v = n; v-- > 0;) {
    if (control.cancelled()) return {};
    if (coreness_new[v] + 1 < target) continue;
    auto nbrs = relabelled.neighbors(v);
    std::vector<VertexId> ego(std::upper_bound(nbrs.begin(), nbrs.end(), v),
                              nbrs.end());
    // Members must themselves have enough coreness.
    std::erase_if(ego, [&](VertexId u) { return coreness_new[u] + 1 < target; });
    if (ego.size() + 1 < target) continue;
    DenseSubgraph sub = induce_dense(relabelled, ego);
    // Need a clique of size target-1 inside the ego network.
    vc::McViaVcResult r =
        vc::max_clique_via_vc(sub, target - 2, &control);
    if (r.timed_out) return {};
    if (!r.clique.empty()) {
      std::vector<VertexId> clique{v};
      for (VertexId local : r.clique) clique.push_back(sub.vertices[local]);
      return clique;
    }
  }
  return {};
}

}  // namespace

BaselineResult domega_solve(const Graph& g, DomegaMode mode,
                            const DomegaOptions& options) {
  BaselineResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;

  SolveControl control(options.time_limit_seconds);

  kcore::CoreDecomposition core = kcore::coreness(g);
  kcore::VertexOrder order = kcore::order_by_coreness_degree(g, core.coreness);
  Graph relabelled = kcore::relabel(g, order);
  std::vector<VertexId> coreness_new(n);
  for (VertexId v = 0; v < n; ++v) {
    coreness_new[v] = core.coreness[order.new_to_orig[v]];
  }

  const VertexId upper = core.degeneracy + 1;  // omega <= d + 1
  std::vector<VertexId> best = greedy_clique(relabelled, coreness_new);
  VertexId lower = static_cast<VertexId>(best.size());  // omega >= |best|

  if (mode == DomegaMode::kLinearScan) {
    // Gap 0, 1, 2, ...: first feasible target is the maximum.
    for (VertexId target = upper; target > lower; --target) {
      if (control.cancelled()) break;
      std::vector<VertexId> found =
          find_clique_of_size(relabelled, coreness_new, target, control);
      if (!found.empty()) {
        best = std::move(found);
        break;
      }
    }
  } else {
    // Binary search on the achievable clique size in [lower, upper].
    VertexId lo = lower, hi = upper;
    while (lo < hi && !control.cancelled()) {
      VertexId mid = lo + (hi - lo + 1) / 2;
      std::vector<VertexId> found =
          find_clique_of_size(relabelled, coreness_new, mid, control);
      if (!found.empty()) {
        best = std::move(found);
        lo = static_cast<VertexId>(best.size());
        if (lo >= hi) break;
      } else {
        if (control.cancelled()) break;  // inconclusive, not a proof
        hi = mid - 1;
      }
    }
  }

  result.clique.reserve(best.size());
  for (VertexId v : best) result.clique.push_back(order.new_to_orig[v]);
  std::sort(result.clique.begin(), result.clique.end());
  result.omega = static_cast<VertexId>(result.clique.size());
  result.timed_out = control.cancelled();
  return result;
}

}  // namespace lazymc::baselines
