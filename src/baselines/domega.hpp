// dOmega-like baseline (Walteros & Buchanan, Operations Research 2020):
// solves maximum clique by searching over the clique-core gap
// g = d(G) + 1 - omega(G), deciding each candidate omega with k-Vertex-
// Cover calls on the complements of ego networks.
//
// Two gap-search strategies, as in the paper's evaluation:
//  * LS — linear scan of the gap 0, 1, 2, ... (fast when the gap is 0,
//    degrades badly as the gap grows);
//  * BS — binary search over the gap range bounded below by a heuristic
//    clique.
//
// Sequential, like the original.
#pragma once

#include <limits>

#include "baselines/pmc.hpp"  // BaselineResult
#include "graph/graph.hpp"

namespace lazymc::baselines {

enum class DomegaMode { kLinearScan, kBinarySearch };

struct DomegaOptions {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
};

BaselineResult domega_solve(const Graph& g, DomegaMode mode,
                            const DomegaOptions& options = {});

}  // namespace lazymc::baselines
