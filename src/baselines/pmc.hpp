// PMC-like baseline (Rossi et al., WWW'14): a parallel branch-and-bound
// maximum clique solver with coreness-based heuristic search and greedy
// coloring pruning.
//
// Deliberately re-creates the design points the paper contrasts LazyMC
// against (Section V-A):
//  * the relabelled graph is constructed *eagerly* and in full up front;
//  * no advance filtering of candidate sets beyond the coreness test;
//  * no early-exit intersections;
//  * every subproblem is solved by MC branch-and-bound (no k-VC choice).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc::baselines {

struct BaselineResult {
  std::vector<VertexId> clique;  // original ids, sorted
  VertexId omega = 0;
  bool timed_out = false;
};

struct PmcOptions {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
};

/// Parallel (uses the global thread pool).
BaselineResult pmc_solve(const Graph& g, const PmcOptions& options = {});

}  // namespace lazymc::baselines
