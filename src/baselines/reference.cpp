#include "baselines/reference.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/subgraph.hpp"
#include "mc/bb_solver.hpp"

namespace lazymc::baselines {

std::vector<VertexId> max_clique_reference(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  DenseSubgraph sub = induce_dense(g, all);
  mc::BBOptions opt;  // lower_bound 0: always finds the maximum
  mc::BBResult r = mc::solve_mc_dense(sub, opt);
  std::vector<VertexId> out;
  out.reserve(r.clique.size());
  for (VertexId local : r.clique) out.push_back(sub.vertices[local]);
  std::sort(out.begin(), out.end());
  if (out.empty() && n > 0) out.push_back(0);  // single vertex is a 1-clique
  return out;
}

std::vector<VertexId> max_clique_naive(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n > 24) throw std::invalid_argument("max_clique_naive: n > 24");
  if (n == 0) return {};
  std::uint32_t best_mask = 0;
  int best_count = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    int count = __builtin_popcount(mask);
    if (count <= best_count) continue;
    bool clique = true;
    for (VertexId u = 0; u < n && clique; ++u) {
      if (!(mask & (1u << u))) continue;
      for (VertexId v = u + 1; v < n && clique; ++v) {
        if (!(mask & (1u << v))) continue;
        if (!g.has_edge(u, v)) clique = false;
      }
    }
    if (clique) {
      best_mask = mask;
      best_count = count;
    }
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v) {
    if (best_mask & (1u << v)) out.push_back(v);
  }
  return out;
}

}  // namespace lazymc::baselines
