// AVX-512 instantiation of the word-parallel kernels: one 512-bit vector
// per 8-word block, 32-bit-index gathers (or straight loads on the
// contiguous dense-zone path) and native VPOPCNTQ (guarded by
// __AVX512F__ + __AVX512VPOPCNTDQ__).
#include "intersect/wp_kernels.hpp"

#if LAZYMC_HAVE_AVX512

namespace lazymc::wp {
namespace {

struct Avx512Ops {
  static constexpr std::size_t kWidth = 8;

  static __m512i and_gather(const std::uint32_t* idx,
                            const std::uint64_t* bits,
                            const std::uint64_t* row) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm512_and_si512(_mm512_loadu_si512(bits),
                            _mm512_i32gather_epi64(vi, row, 8));
  }

  static __m512i and_contig(const std::uint64_t* bits,
                            const std::uint64_t* rowp) {
    return _mm512_and_si512(_mm512_loadu_si512(bits),
                            _mm512_loadu_si512(rowp));
  }

  static std::int64_t count(const std::uint32_t* idx,
                            const std::uint64_t* bits,
                            const std::uint64_t* row) {
    return _mm512_reduce_add_epi64(
        _mm512_popcnt_epi64(and_gather(idx, bits, row)));
  }

  static std::int64_t count_contig(const std::uint64_t* bits,
                                   const std::uint64_t* rowp) {
    return _mm512_reduce_add_epi64(
        _mm512_popcnt_epi64(and_contig(bits, rowp)));
  }

  static std::int64_t fill(const std::uint32_t* idx, const std::uint64_t* bits,
                           const std::uint64_t* row, std::uint64_t* out) {
    const __m512i both = and_gather(idx, bits, row);
    _mm512_storeu_si512(out, both);
    return _mm512_reduce_add_epi64(_mm512_popcnt_epi64(both));
  }

  static std::int64_t fill_contig(const std::uint64_t* bits,
                                  const std::uint64_t* rowp,
                                  std::uint64_t* out) {
    const __m512i both = and_contig(bits, rowp);
    _mm512_storeu_si512(out, both);
    return _mm512_reduce_add_epi64(_mm512_popcnt_epi64(both));
  }
};

constexpr Table kAvx512 = make_table<Avx512Ops>(simd::Tier::kAvx512);

}  // namespace

const Table* avx512_table() { return &kAvx512; }

}  // namespace lazymc::wp

#else  // !LAZYMC_HAVE_AVX512

namespace lazymc::wp {
const Table* avx512_table() { return nullptr; }
}  // namespace lazymc::wp

#endif
