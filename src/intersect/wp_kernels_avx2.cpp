// AVX2 instantiation of the word-parallel kernels: 16-word blocks as four
// 256-bit halves (straight loads of the SoA SparseWordSet, VPGATHERQQ —
// or straight loads on the contiguous dense-zone path — for the row
// words), nibble-LUT popcounts folded with one horizontal reduce per
// block (the per-block budget check is the only consumer of the scalar
// sum, so wider blocks amortize both the reduce and the check).
#include "intersect/wp_kernels.hpp"

#if LAZYMC_HAVE_AVX2

namespace lazymc::wp {
namespace {

struct Avx2Ops {
  static constexpr std::size_t kWidth = 16;

  static std::int64_t reduce4(__m256i a, __m256i b, __m256i c, __m256i d) {
    const __m256i ab = _mm256_add_epi64(simd::popcount_epi64(a),
                                        simd::popcount_epi64(b));
    const __m256i cd = _mm256_add_epi64(simd::popcount_epi64(c),
                                        simd::popcount_epi64(d));
    return static_cast<std::int64_t>(
        simd::reduce_add_epi64(_mm256_add_epi64(ab, cd)));
  }

  static __m256i and_gather(const std::uint32_t* idx,
                            const std::uint64_t* bits,
                            const std::uint64_t* row) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    const __m256i gathered = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(row), vi, 8);
    return _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits)), gathered);
  }

  static __m256i and_contig(const std::uint64_t* bits,
                            const std::uint64_t* rowp) {
    return _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rowp)));
  }

  static std::int64_t count(const std::uint32_t* idx,
                            const std::uint64_t* bits,
                            const std::uint64_t* row) {
    return reduce4(and_gather(idx, bits, row),
                   and_gather(idx + 4, bits + 4, row),
                   and_gather(idx + 8, bits + 8, row),
                   and_gather(idx + 12, bits + 12, row));
  }

  static std::int64_t count_contig(const std::uint64_t* bits,
                                   const std::uint64_t* rowp) {
    return reduce4(and_contig(bits, rowp), and_contig(bits + 4, rowp + 4),
                   and_contig(bits + 8, rowp + 8),
                   and_contig(bits + 12, rowp + 12));
  }

  static std::int64_t fill(const std::uint32_t* idx, const std::uint64_t* bits,
                           const std::uint64_t* row, std::uint64_t* out) {
    const __m256i v0 = and_gather(idx, bits, row);
    const __m256i v1 = and_gather(idx + 4, bits + 4, row);
    const __m256i v2 = and_gather(idx + 8, bits + 8, row);
    const __m256i v3 = and_gather(idx + 12, bits + 12, row);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 12), v3);
    return reduce4(v0, v1, v2, v3);
  }

  static std::int64_t fill_contig(const std::uint64_t* bits,
                                  const std::uint64_t* rowp,
                                  std::uint64_t* out) {
    const __m256i v0 = and_contig(bits, rowp);
    const __m256i v1 = and_contig(bits + 4, rowp + 4);
    const __m256i v2 = and_contig(bits + 8, rowp + 8);
    const __m256i v3 = and_contig(bits + 12, rowp + 12);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 12), v3);
    return reduce4(v0, v1, v2, v3);
  }
};

constexpr Table kAvx2 = make_table<Avx2Ops>(simd::Tier::kAvx2);

}  // namespace

const Table* avx2_table() { return &kAvx2; }

}  // namespace lazymc::wp

#else  // !LAZYMC_HAVE_AVX2

namespace lazymc::wp {
const Table* avx2_table() { return nullptr; }
}  // namespace lazymc::wp

#endif
