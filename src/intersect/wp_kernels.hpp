// Tiered word-parallel intersection kernels (SparseWordSet A x BitsetRow
// B), shared between the scalar build and the AVX2/AVX-512 translation
// units.
//
// Each kernel body is written once, templated over a block-ops policy V:
//
//   V::kWidth                        words processed per step (1 / 8);
//   V::count(idx, bits, row)         popcount of the block's A&B words,
//                                    row words fetched by gather;
//   V::count_contig(bits, rowp)      same, row words contiguous at rowp;
//   V::fill(...) / V::fill_contig()  same, materializing the AND words.
//
// Two precomputed facts strip work out of the inner loop:
//  * A's cumulative word popcounts (SparseWordSet::prefix) turn the
//    miss-budget update h -= popcount(a) - popcount(a&b) into the
//    equivalent test  hits + (|A| - prefix) <= θ  — no popcount of the A
//    side per block;
//  * when A's occupied words form one contiguous run (the dense-zone
//    case: nearly every zone word occupied), the row words are a
//    contiguous slice too, so the vector tiers use straight loads
//    instead of gathers.
//
// The early exits are checked once per block instead of once per word.
// That preserves the exact exit *semantics*: the budget and hit count
// are both monotone over the scan, and the failure condition (misses
// already rule out > θ hits) and success condition (hits > θ) can never
// both occur in one scan — so coarser checks change only how early the
// function returns, never what it returns.  Every tier is bit-identical
// to the scalar kernel, which the forced-tier property tests enforce.
#pragma once

#include <bit>
#include <cstdint>

#include "intersect/intersect.hpp"
#include "support/simd.hpp"

namespace lazymc::wp {

/// Dispatch table for one tier; see scalar_table()/avx2_table()/
/// avx512_table() below.
struct Table {
  simd::Tier tier;
  int (*gt)(const SparseWordSet&, const BitsetRow&, VertexId*, std::int64_t);
  int (*size_gt_val)(const SparseWordSet&, const BitsetRow&, std::int64_t);
  bool (*size_gt_bool)(const SparseWordSet&, const BitsetRow&, std::int64_t,
                       bool);
  std::size_t (*size)(const SparseWordSet&, const BitsetRow&);
  std::size_t (*words)(const SparseWordSet&, const BitsetRow&, VertexId*);
};

/// Width-1 policy: one word per "block", used by the scalar tier (and as
/// the reference the vector tiers must agree with).
struct ScalarOps {
  static constexpr std::size_t kWidth = 1;

  static std::int64_t count(const std::uint32_t* idx,
                            const std::uint64_t* bits,
                            const std::uint64_t* row) {
    return std::popcount(bits[0] & row[idx[0]]);
  }
  static std::int64_t count_contig(const std::uint64_t* bits,
                                   const std::uint64_t* rowp) {
    return std::popcount(bits[0] & rowp[0]);
  }
  static std::int64_t fill(const std::uint32_t* idx, const std::uint64_t* bits,
                           const std::uint64_t* row, std::uint64_t* out) {
    out[0] = bits[0] & row[idx[0]];
    return std::popcount(out[0]);
  }
  static std::int64_t fill_contig(const std::uint64_t* bits,
                                  const std::uint64_t* rowp,
                                  std::uint64_t* out) {
    out[0] = bits[0] & rowp[0];
    return std::popcount(out[0]);
  }
};

namespace detail {

/// Appends the set bits of `word` (zone word `index`) to `out` as
/// relabelled vertex ids.
inline std::size_t extract_word(std::uint64_t word, std::uint32_t index,
                                VertexId base, VertexId* out) {
  std::size_t written = 0;
  const VertexId word_base = base + (static_cast<VertexId>(index) << 6);
  while (word) {
    out[written++] =
        word_base + static_cast<unsigned>(std::countr_zero(word));
    word &= word - 1;
  }
  return written;
}

/// A's occupied words form one contiguous index run, so row words can be
/// read as the slice row + idx[0] instead of gathered.
inline bool contiguous(const std::uint32_t* idx, std::size_t ne) {
  return ne > 0 &&
         static_cast<std::size_t>(idx[ne - 1] - idx[0]) + 1 == ne;
}

}  // namespace detail

template <typename V>
int wp_gt(const SparseWordSet& a, const BitsetRow& b, VertexId* out,
          std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t hits = 0;
  std::size_t written = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::uint64_t* row = b.words;
  const VertexId base = b.zone_begin;
  const std::size_t ne = a.num_entries();
  const bool contig = detail::contiguous(idx, ne);
  const std::uint64_t* rowp = contig ? row + idx[0] : nullptr;
  std::uint64_t and_buf[V::kWidth];
  std::size_t k = 0;
  for (; k + V::kWidth <= ne; k += V::kWidth) {
    hits += contig ? V::fill_contig(bits + k, rowp + k, and_buf)
                   : V::fill(idx + k, bits + k, row, and_buf);
    for (std::size_t j = 0; j < V::kWidth; ++j) {
      written += detail::extract_word(and_buf[j], idx[k + j], base,
                                      out + written);
    }
    if (hits + (n - prefix[k + V::kWidth]) <= theta) return kTooSmall;
  }
  for (; k < ne; ++k) {
    const std::uint64_t both = bits[k] & row[idx[k]];
    hits += std::popcount(both);
    written += detail::extract_word(both, idx[k], base, out + written);
    if (hits + (n - prefix[k + 1]) <= theta) return kTooSmall;
  }
  return static_cast<int>(written);
}

template <typename V>
int wp_size_gt_val(const SparseWordSet& a, const BitsetRow& b,
                   std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::uint64_t* row = b.words;
  const std::size_t ne = a.num_entries();
  const bool contig = detail::contiguous(idx, ne);
  const std::uint64_t* rowp = contig ? row + idx[0] : nullptr;
  std::size_t k = 0;
  for (; k + V::kWidth <= ne; k += V::kWidth) {
    hits += contig ? V::count_contig(bits + k, rowp + k)
                   : V::count(idx + k, bits + k, row);
    if (hits + (n - prefix[k + V::kWidth]) <= theta) return kTooSmall;
  }
  for (; k < ne; ++k) {
    hits += std::popcount(bits[k] & row[idx[k]]);
    if (hits + (n - prefix[k + 1]) <= theta) return kTooSmall;
  }
  return static_cast<int>(hits);
}

template <typename V>
bool wp_size_gt_bool(const SparseWordSet& a, const BitsetRow& b,
                     std::int64_t theta, bool enable_second_exit) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  std::int64_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::uint64_t* row = b.words;
  const std::size_t ne = a.num_entries();
  const bool contig = detail::contiguous(idx, ne);
  const std::uint64_t* rowp = contig ? row + idx[0] : nullptr;
  std::size_t k = 0;
  for (; k + V::kWidth <= ne; k += V::kWidth) {
    hits += contig ? V::count_contig(bits + k, rowp + k)
                   : V::count(idx + k, bits + k, row);
    if (hits + (n - prefix[k + V::kWidth]) <= theta) return false;  // exit 1
    if (enable_second_exit && hits > theta) return true;            // exit 2
  }
  for (; k < ne; ++k) {
    hits += std::popcount(bits[k] & row[idx[k]]);
    if (hits + (n - prefix[k + 1]) <= theta) return false;
    if (enable_second_exit && hits > theta) return true;
  }
  return hits > theta;
}

template <typename V>
std::size_t wp_size(const SparseWordSet& a, const BitsetRow& b) {
  std::int64_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint64_t* row = b.words;
  const std::size_t ne = a.num_entries();
  const bool contig = detail::contiguous(idx, ne);
  const std::uint64_t* rowp = contig ? row + idx[0] : nullptr;
  std::size_t k = 0;
  for (; k + V::kWidth <= ne; k += V::kWidth) {
    hits += contig ? V::count_contig(bits + k, rowp + k)
                   : V::count(idx + k, bits + k, row);
  }
  for (; k < ne; ++k) hits += std::popcount(bits[k] & row[idx[k]]);
  return static_cast<std::size_t>(hits);
}

template <typename V>
std::size_t wp_words(const SparseWordSet& a, const BitsetRow& b,
                     VertexId* out) {
  std::size_t written = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint64_t* row = b.words;
  const VertexId base = b.zone_begin;
  const std::size_t ne = a.num_entries();
  const bool contig = detail::contiguous(idx, ne);
  const std::uint64_t* rowp = contig ? row + idx[0] : nullptr;
  std::uint64_t and_buf[V::kWidth];
  std::size_t k = 0;
  for (; k + V::kWidth <= ne; k += V::kWidth) {
    if (contig) {
      V::fill_contig(bits + k, rowp + k, and_buf);
    } else {
      V::fill(idx + k, bits + k, row, and_buf);
    }
    for (std::size_t j = 0; j < V::kWidth; ++j) {
      written += detail::extract_word(and_buf[j], idx[k + j], base,
                                      out + written);
    }
  }
  for (; k < ne; ++k) {
    written += detail::extract_word(bits[k] & row[idx[k]], idx[k], base,
                                    out + written);
  }
  return written;
}

template <typename V>
constexpr Table make_table(simd::Tier tier) {
  return Table{tier,          &wp_gt<V>,   &wp_size_gt_val<V>,
               &wp_size_gt_bool<V>, &wp_size<V>, &wp_words<V>};
}

const Table& scalar_table();
/// Null when the respective ISA was not compiled in.
const Table* avx2_table();
const Table* avx512_table();
/// The table for simd::current_tier().
const Table& active_table();

}  // namespace lazymc::wp
