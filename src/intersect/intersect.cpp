#include "intersect/intersect.hpp"

#include <algorithm>

namespace lazymc {

bool SortedLookup::contains(VertexId v) const {
  return std::binary_search(data_.begin(), data_.end(), v);
}

std::size_t intersect_sorted(std::span<const VertexId> a,
                             std::span<const VertexId> b, VertexId* out) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    VertexId x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[n++] = x;
      ++i;
      ++j;
    }
  }
  return n;
}

std::vector<VertexId> intersect_sorted(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  out.resize(intersect_sorted(a, b, out.data()));
  return out;
}

std::size_t intersect_gallop(std::span<const VertexId> a,
                             std::span<const VertexId> b, VertexId* out) {
  // Ensure a is the smaller side.
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t n = 0;
  const VertexId* lo = b.data();
  const VertexId* end = b.data() + b.size();
  for (VertexId x : a) {
    // Exponential search from the current frontier.
    std::size_t step = 1;
    const VertexId* probe = lo;
    while (probe + step < end && *(probe + step) < x) {
      probe += step;
      step <<= 1;
    }
    const VertexId* hi = std::min(probe + step + 1, end);
    lo = std::lower_bound(probe, hi, x);
    if (lo != end && *lo == x) {
      out[n++] = x;
      ++lo;
    }
    if (lo == end) break;
  }
  return n;
}

int intersect_sorted_gt(std::span<const VertexId> a,
                        std::span<const VertexId> b, VertexId* out,
                        std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  // The intersection can lose at most (n - hits_possible) elements per
  // side; track the remaining budget on both.
  std::int64_t ha = n - theta;  // tolerable misses from a
  std::int64_t hb = m - theta;  // tolerable misses from b
  std::size_t i = 0, j = 0;
  std::int64_t written = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      if (--ha <= 0) return kTooSmall;
    } else if (b[j] < a[i]) {
      ++j;
      if (--hb <= 0) return kTooSmall;
    } else {
      out[written++] = a[i];
      ++i;
      ++j;
    }
  }
  // Elements left unscanned on the exhausted side are all misses for the
  // other side.
  if (i < a.size() && static_cast<std::int64_t>(a.size() - i) >= ha) {
    return kTooSmall;
  }
  if (j < b.size() && static_cast<std::int64_t>(b.size() - j) >= hb) {
    return kTooSmall;
  }
  return written > theta ? static_cast<int>(written) : kTooSmall;
}

bool intersect_sorted_size_gt_bool(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   std::int64_t theta,
                                   bool enable_second_exit) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::size_t i = 0, j = 0;
  std::int64_t hits = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      if (--ha <= 0) return false;
    } else if (b[j] < a[i]) {
      ++j;
      if (--hb <= 0) return false;
    } else {
      ++hits;
      if (hits > theta && enable_second_exit) return true;  // second exit
      ++i;
      ++j;
    }
  }
  return hits > theta;
}

std::vector<VertexId> intersect_reference(std::span<const VertexId> a,
                                          std::span<const VertexId> b) {
  std::vector<VertexId> sa(a.begin(), a.end());
  std::vector<VertexId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<VertexId> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace lazymc
