#include "intersect/intersect.hpp"

#include <algorithm>
#include <bit>

#include "intersect/wp_kernels.hpp"

namespace lazymc {

bool SortedLookup::contains(VertexId v) const {
  return std::binary_search(data_.begin(), data_.end(), v);
}

std::size_t intersect_sorted(std::span<const VertexId> a,
                             std::span<const VertexId> b, VertexId* out) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    VertexId x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[n++] = x;
      ++i;
      ++j;
    }
  }
  return n;
}

std::vector<VertexId> intersect_sorted(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  out.resize(intersect_sorted(a, b, out.data()));
  return out;
}

std::size_t intersect_gallop(std::span<const VertexId> a,
                             std::span<const VertexId> b, VertexId* out) {
  // Ensure a is the smaller side.
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t n = 0;
  const VertexId* lo = b.data();
  const VertexId* end = b.data() + b.size();
  for (VertexId x : a) {
    // Exponential search from the current frontier.
    std::size_t step = 1;
    const VertexId* probe = lo;
    while (probe + step < end && *(probe + step) < x) {
      probe += step;
      step <<= 1;
    }
    const VertexId* hi = std::min(probe + step + 1, end);
    lo = std::lower_bound(probe, hi, x);
    if (lo != end && *lo == x) {
      out[n++] = x;
      ++lo;
    }
    if (lo == end) break;
  }
  return n;
}

int intersect_sorted_gt(std::span<const VertexId> a,
                        std::span<const VertexId> b, VertexId* out,
                        std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  // The intersection can lose at most (n - hits_possible) elements per
  // side; track the remaining budget on both.
  std::int64_t ha = n - theta;  // tolerable misses from a
  std::int64_t hb = m - theta;  // tolerable misses from b
  std::size_t i = 0, j = 0;
  std::int64_t written = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      if (--ha <= 0) return kTooSmall;
    } else if (b[j] < a[i]) {
      ++j;
      if (--hb <= 0) return kTooSmall;
    } else {
      out[written++] = a[i];
      ++i;
      ++j;
    }
  }
  // Elements left unscanned on the exhausted side are all misses for the
  // other side.
  if (i < a.size() && static_cast<std::int64_t>(a.size() - i) >= ha) {
    return kTooSmall;
  }
  if (j < b.size() && static_cast<std::int64_t>(b.size() - j) >= hb) {
    return kTooSmall;
  }
  return written > theta ? static_cast<int>(written) : kTooSmall;
}

bool intersect_sorted_size_gt_bool(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   std::int64_t theta,
                                   bool enable_second_exit) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::size_t i = 0, j = 0;
  std::int64_t hits = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      if (--ha <= 0) return false;
    } else if (b[j] < a[i]) {
      ++j;
      if (--hb <= 0) return false;
    } else {
      ++hits;
      if (hits > theta && enable_second_exit) return true;  // second exit
      ++i;
      ++j;
    }
  }
  return hits > theta;
}

int intersect_sorted_size_gt_val(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::size_t i = 0, j = 0;
  std::int64_t hits = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      if (--ha <= 0) return kTooSmall;
    } else if (b[j] < a[i]) {
      ++j;
      if (--hb <= 0) return kTooSmall;
    } else {
      ++hits;
      ++i;
      ++j;
    }
  }
  return hits > theta ? static_cast<int>(hits) : kTooSmall;
}

std::size_t intersect_sorted_size(std::span<const VertexId> a,
                                  std::span<const VertexId> b) {
  std::size_t i = 0, j = 0, hits = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++hits;
      ++i;
      ++j;
    }
  }
  return hits;
}

// ---- word-parallel kernels (SparseWordSet x BitsetRow) --------------------
//
// The kernel bodies live in intersect/wp_kernels.hpp, instantiated once
// per SIMD tier; the public functions below route through the tier table
// selected by simd::current_tier() (see support/simd.hpp for the
// compile-guard / CPUID / --kernels interplay).  Every tier returns
// bit-identical results; the tiers differ only in how many zone words
// each budget check covers.

namespace wp {

const Table& scalar_table() {
  static constexpr Table table = make_table<ScalarOps>(simd::Tier::kScalar);
  return table;
}

const Table& active_table() {
  return simd::pick_table(scalar_table(), avx2_table(), avx512_table());
}

}  // namespace wp

int intersect_gt(const SparseWordSet& a, const BitsetRow& b, VertexId* out,
                 std::int64_t theta) {
  return wp::active_table().gt(a, b, out, theta);
}

int intersect_size_gt_val(const SparseWordSet& a, const BitsetRow& b,
                          std::int64_t theta) {
  return wp::active_table().size_gt_val(a, b, theta);
}

bool intersect_size_gt_bool(const SparseWordSet& a, const BitsetRow& b,
                            std::int64_t theta, bool enable_second_exit) {
  return wp::active_table().size_gt_bool(a, b, theta, enable_second_exit);
}

std::size_t intersect_size(const SparseWordSet& a, const BitsetRow& b) {
  return wp::active_table().size(a, b);
}

std::size_t intersect_words(const SparseWordSet& a, const BitsetRow& b,
                            VertexId* out) {
  return wp::active_table().words(a, b, out);
}

// ---- prefetched batch probing into a HopscotchSet -------------------------
//
// The early exits stay at element granularity (results are bit-identical
// to the scalar kernels).  Each key is hashed exactly once: its home
// index is computed kProbeLookahead iterations early, the home cache
// lines are prefetched, and the index parks in a small ring until the
// probe consumes it with contains_at — so consecutive probe misses
// overlap in the memory system and no hash is recomputed.

namespace {

/// Rolling window of precomputed home indices over a probe array.
class ProbeRing {
 public:
  ProbeRing(std::span<const VertexId> a, const HopscotchSet& b)
      : a_(a), b_(b) {
    const std::size_t lead = std::min(a.size(), kProbeLookahead);
    for (std::size_t i = 0; i < lead; ++i) {
      homes_[i] = b.home_of(a[i]);
      b.prefetch_home(homes_[i]);
    }
  }

  /// Membership of a[i]; call with i strictly increasing from 0.
  bool probe(std::size_t i) {
    // Read the parked home before the lookahead store: slot i+lookahead
    // aliases slot i in the ring.
    const std::size_t home = homes_[i & (kProbeLookahead - 1)];
    const std::size_t ahead = i + kProbeLookahead;
    if (ahead < a_.size()) {
      const std::size_t next = b_.home_of(a_[ahead]);
      homes_[ahead & (kProbeLookahead - 1)] = next;
      b_.prefetch_home(next);
    }
    return b_.contains_at(home, a_[i]);
  }

 private:
  static_assert((kProbeLookahead & (kProbeLookahead - 1)) == 0,
                "ring indexing requires a power-of-two lookahead");
  std::span<const VertexId> a_;
  const HopscotchSet& b_;
  std::size_t homes_[kProbeLookahead];
};

}  // namespace

int intersect_gt_prefetch(std::span<const VertexId> a, const HopscotchSet& b,
                          VertexId* out, std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  ProbeRing ring(a, b);
  std::int64_t h = n - theta;
  std::int64_t written = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ring.probe(i)) {
      if (--h <= 0) return kTooSmall;
    } else {
      out[written++] = a[i];
    }
  }
  return static_cast<int>(written);
}

int intersect_size_gt_val_prefetch(std::span<const VertexId> a,
                                   const HopscotchSet& b, std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  ProbeRing ring(a, b);
  std::int64_t h = n - theta;
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ring.probe(i)) {
      if (--h <= 0) return kTooSmall;
    } else {
      ++hits;
    }
  }
  return static_cast<int>(hits);
}

bool intersect_size_gt_bool_prefetch(std::span<const VertexId> a,
                                     const HopscotchSet& b, std::int64_t theta,
                                     bool enable_second_exit) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  ProbeRing ring(a, b);
  std::int64_t h = n - theta;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!ring.probe(static_cast<std::size_t>(i))) {
      if (--h <= 0) return false;
    } else if (enable_second_exit && h > n - i - 1) {
      return true;
    }
  }
  return h > 0;
}

std::size_t intersect_size_prefetch(std::span<const VertexId> a,
                                    const HopscotchSet& b) {
  ProbeRing ring(a, b);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    hits += ring.probe(i) ? 1 : 0;
  }
  return hits;
}

std::size_t intersect_hash_prefetch(std::span<const VertexId> a,
                                    const HopscotchSet& b, VertexId* out) {
  ProbeRing ring(a, b);
  std::size_t written = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ring.probe(i)) out[written++] = a[i];
  }
  return written;
}

std::vector<VertexId> intersect_reference(std::span<const VertexId> a,
                                          std::span<const VertexId> b) {
  std::vector<VertexId> sa(a.begin(), a.end());
  std::vector<VertexId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<VertexId> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace lazymc
