// Roaring-style hybrid neighborhood rows: per-row container dispatch for
// the word-parallel kernels.
//
// A packed bitset row costs zone/8 bytes no matter how sparse the
// neighborhood is, so `--bitset-budget-mb` is a hard ceiling on how much
// of the zone goes word-speed.  Hybrid rows store each row as whichever
// of three containers its density earns (the Roaring-bitmap recipe —
// Chambi, Lemire et al., "Better bitmap performance with Roaring
// bitmaps"), all in zone coordinates like BitsetRow:
//
//   kArray   — sorted u32 zone offsets; 4 bytes/neighbor.  Wins when the
//              in-zone degree is small (<= --hybrid-array-max).
//   kBitset  — the existing 64-byte-aligned packed words; zone/8 bytes.
//              Wins on dense rows.
//   kRun     — (start, length) u32 span pairs; 8 bytes/run.  Wins when
//              neighbors cluster (relabelled ids group by coreness level,
//              so rows of near-clique zones are genuinely runny).
//
// Every kernel here reproduces the word-granularity arithmetic of
// wp_kernels.hpp exactly: A's side is the same SparseWordSet, the scan
// visits A's occupied words in the same ascending order, and the
// miss-budget / success exits test the same  hits + (|A| - prefix) <= θ
// and  hits > θ  conditions after each word.  The only thing a container
// changes is *how* B's characteristic word is produced — direct index
// (bitset), a monotone element cursor (array), or span masks ANDed into
// the word (run) — so results are bit-identical to the scalar reference
// across containers and SIMD tiers (the bitset kind dispatches into the
// tiered wp tables unchanged).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "intersect/bitset_row.hpp"
#include "intersect/intersect.hpp"
#include "intersect/wp_kernels.hpp"

namespace lazymc {

/// Per-row container class of a hybrid row.
enum class RowContainer : std::uint8_t { kArray = 0, kBitset = 1, kRun = 2 };

inline const char* row_container_name(RowContainer k) {
  switch (k) {
    case RowContainer::kArray:
      return "array";
    case RowContainer::kBitset:
      return "bitset";
    case RowContainer::kRun:
      return "run";
  }
  return "?";
}

/// Payload shared by every empty hybrid row: a valid (non-null) pointer
/// with zero units, so empty rows cost no arena bytes at all.
inline constexpr std::uint64_t kEmptyHybridPayload[1] = {0};

/// Non-owning view of one vertex's hybrid neighborhood row over the zone
/// of interest.  `data == nullptr` means "no row" (budget exhausted or
/// representation absent); satisfies the MembershipSet concept.
///
/// Payload layout by kind (always carved 64-byte aligned):
///   kArray  — units sorted u32 zone offsets;
///   kBitset — units 64-bit words (== ceil(zone_bits/64));
///   kRun    — units (start, length) u32 pairs, starts strictly
///             ascending, spans disjoint and non-adjacent.
struct HybridRow {
  const std::uint64_t* data = nullptr;
  VertexId zone_begin = 0;
  VertexId zone_bits = 0;      // zone size in bits
  std::uint32_t popcount = 0;  // set bits = filtered in-zone degree
  std::uint32_t units = 0;     // container length (see layout above)
  RowContainer kind = RowContainer::kBitset;

  bool valid() const { return data != nullptr; }
  std::size_t size() const { return popcount; }

  const std::uint32_t* u32() const {
    return reinterpret_cast<const std::uint32_t*>(data);
  }
  /// The bitset kind viewed as a plain BitsetRow (for the tiered wp
  /// kernels); only meaningful when kind == kBitset.
  BitsetRow as_bitset() const {
    return BitsetRow{data, zone_begin, zone_bits, popcount};
  }

  /// Membership of relabelled vertex v (out-of-zone ids report false,
  /// same contract as BitsetRow).
  bool contains(VertexId v) const {
    if (v < zone_begin) return false;
    const VertexId i = v - zone_begin;
    if (i >= zone_bits) return false;
    switch (kind) {
      case RowContainer::kBitset:
        return (data[i >> 6] >> (i & 63)) & 1ULL;
      case RowContainer::kArray: {
        const std::uint32_t* e = u32();
        return std::binary_search(e, e + units, static_cast<std::uint32_t>(i));
      }
      case RowContainer::kRun: {
        const std::uint32_t* r = u32();
        // Last run with start <= i.
        std::uint32_t lo = 0, hi = units;
        while (lo < hi) {
          const std::uint32_t mid = (lo + hi) / 2;
          if (r[2 * mid] <= i) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo == 0) return false;
        const std::uint32_t start = r[2 * (lo - 1)];
        const std::uint32_t len = r[2 * (lo - 1) + 1];
        return i - start < len;
      }
    }
    return false;
  }
};

namespace hybrid_detail {

/// Bit mask for positions [lo, hi) of one 64-bit word (0 <= lo < hi <= 64).
inline std::uint64_t span_mask(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t upper = hi >= 64 ? ~0ULL : (1ULL << hi) - 1;
  return upper & ~((1ULL << lo) - 1);
}

/// Produces the array container's characteristic 64-bit word for ascending
/// zone-word indices: a monotone element cursor, O(popcount) over a scan.
class ArrayWordCursor {
 public:
  ArrayWordCursor(const std::uint32_t* e, std::uint32_t n) : e_(e), n_(n) {}

  /// Word `w` of the container; calls must use ascending w.
  std::uint64_t word(std::uint32_t w) {
    while (p_ < n_ && (e_[p_] >> 6) < w) ++p_;
    std::uint64_t bits = 0;
    while (p_ < n_ && (e_[p_] >> 6) == w) {
      bits |= 1ULL << (e_[p_] & 63);
      ++p_;
    }
    return bits;
  }

 private:
  const std::uint32_t* e_;
  std::uint32_t n_;
  std::uint32_t p_ = 0;
};

/// Produces the run container's characteristic word for ascending word
/// indices: each overlapping span contributes one mask AND-ed into the
/// word (the span-AND path — no per-element work at all).
class RunWordCursor {
 public:
  RunWordCursor(const std::uint32_t* runs, std::uint32_t n)
      : r_(runs), n_(n) {}

  std::uint64_t word(std::uint32_t w) {
    const std::uint64_t lo = static_cast<std::uint64_t>(w) << 6;
    const std::uint64_t hi = lo + 64;
    while (p_ < n_ && end(p_) <= lo) ++p_;
    std::uint64_t bits = 0;
    for (std::uint32_t q = p_; q < n_ && start(q) < hi; ++q) {
      bits |= span_mask(std::max<std::uint64_t>(start(q), lo) - lo,
                        std::min<std::uint64_t>(end(q), hi) - lo);
    }
    return bits;
  }

 private:
  std::uint64_t start(std::uint32_t q) const { return r_[2 * q]; }
  std::uint64_t end(std::uint32_t q) const {
    return static_cast<std::uint64_t>(r_[2 * q]) + r_[2 * q + 1];
  }

  const std::uint32_t* r_;
  std::uint32_t n_;
  std::uint32_t p_ = 0;
};

/// Kind-erased ascending word cursor over any hybrid container.
class HybridWordCursor {
 public:
  explicit HybridWordCursor(const HybridRow& row)
      : row_(&row),
        array_(row.kind == RowContainer::kArray ? row.u32() : nullptr,
               row.kind == RowContainer::kArray ? row.units : 0),
        run_(row.kind == RowContainer::kRun ? row.u32() : nullptr,
             row.kind == RowContainer::kRun ? row.units : 0) {}

  std::uint64_t word(std::uint32_t w) {
    switch (row_->kind) {
      case RowContainer::kBitset:
        return row_->data[w];
      case RowContainer::kArray:
        return array_.word(w);
      case RowContainer::kRun:
        return run_.word(w);
    }
    return 0;
  }

 private:
  const HybridRow* row_;
  ArrayWordCursor array_;
  RunWordCursor run_;
};

/// Visits the occupied words of a hybrid row ascending as (index, bits);
/// stops early when fn returns false.  Used by the hybrid x hybrid
/// kernels, where the A side is a row rather than a SparseWordSet.
template <typename Fn>
void for_each_word(const HybridRow& r, Fn&& fn) {
  switch (r.kind) {
    case RowContainer::kBitset: {
      const std::uint32_t nw =
          static_cast<std::uint32_t>((r.zone_bits + 63) / 64);
      for (std::uint32_t w = 0; w < nw; ++w) {
        if (r.data[w] && !fn(w, r.data[w])) return;
      }
      return;
    }
    case RowContainer::kArray: {
      const std::uint32_t* e = r.u32();
      std::uint32_t p = 0;
      while (p < r.units) {
        const std::uint32_t w = e[p] >> 6;
        std::uint64_t bits = 0;
        while (p < r.units && (e[p] >> 6) == w) {
          bits |= 1ULL << (e[p] & 63);
          ++p;
        }
        if (!fn(w, bits)) return;
      }
      return;
    }
    case RowContainer::kRun: {
      const std::uint32_t* runs = r.u32();
      std::uint64_t pend_bits = 0;
      std::uint32_t pend_w = 0;
      bool open = false;
      for (std::uint32_t q = 0; q < r.units; ++q) {
        std::uint64_t pos = runs[2 * q];
        const std::uint64_t end = pos + runs[2 * q + 1];
        while (pos < end) {
          const std::uint32_t w = static_cast<std::uint32_t>(pos >> 6);
          const std::uint64_t stop =
              std::min<std::uint64_t>(end, (static_cast<std::uint64_t>(w) + 1)
                                               << 6);
          const std::uint64_t mask =
              span_mask(pos - (static_cast<std::uint64_t>(w) << 6),
                        stop - (static_cast<std::uint64_t>(w) << 6));
          if (open && w == pend_w) {
            pend_bits |= mask;
          } else {
            if (open && !fn(pend_w, pend_bits)) return;
            pend_w = w;
            pend_bits = mask;
            open = true;
          }
          pos = stop;
        }
      }
      if (open) fn(pend_w, pend_bits);
      return;
    }
  }
}

}  // namespace hybrid_detail

// --------------------------------------------------------------------------
// SparseWordSet A x HybridRow B.  Same contracts as the BitsetRow kernels
// in intersect.hpp; the bitset kind routes through the tiered wp tables
// (so SIMD acceleration is untouched), array/run kinds run the cursor
// kernels below with identical per-word exit arithmetic.

namespace hybrid_detail {

template <typename Cursor>
int cursor_size_gt_val(const SparseWordSet& a, Cursor cur, std::int64_t m,
                       std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::size_t ne = a.num_entries();
  for (std::size_t k = 0; k < ne; ++k) {
    hits += std::popcount(bits[k] & cur.word(idx[k]));
    if (hits + (n - prefix[k + 1]) <= theta) return kTooSmall;
  }
  return static_cast<int>(hits);
}

template <typename Cursor>
bool cursor_size_gt_bool(const SparseWordSet& a, Cursor cur, std::int64_t m,
                         std::int64_t theta, bool enable_second_exit) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  if (n <= theta || m <= theta) return false;
  std::int64_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::size_t ne = a.num_entries();
  for (std::size_t k = 0; k < ne; ++k) {
    hits += std::popcount(bits[k] & cur.word(idx[k]));
    if (hits + (n - prefix[k + 1]) <= theta) return false;
    if (enable_second_exit && hits > theta) return true;
  }
  return hits > theta;
}

template <typename Cursor>
int cursor_gt(const SparseWordSet& a, Cursor cur, VertexId zone_begin,
              std::int64_t m, VertexId* out, std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.count());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t hits = 0;
  std::size_t written = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::uint32_t* prefix = a.prefix().data();
  const std::size_t ne = a.num_entries();
  for (std::size_t k = 0; k < ne; ++k) {
    const std::uint64_t both = bits[k] & cur.word(idx[k]);
    hits += std::popcount(both);
    written += wp::detail::extract_word(both, idx[k], zone_begin,
                                        out + written);
    if (hits + (n - prefix[k + 1]) <= theta) return kTooSmall;
  }
  return static_cast<int>(written);
}

template <typename Cursor>
std::size_t cursor_size(const SparseWordSet& a, Cursor cur) {
  std::size_t hits = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::size_t ne = a.num_entries();
  for (std::size_t k = 0; k < ne; ++k) {
    hits += static_cast<std::size_t>(std::popcount(bits[k] & cur.word(idx[k])));
  }
  return hits;
}

template <typename Cursor>
std::size_t cursor_words(const SparseWordSet& a, Cursor cur,
                         VertexId zone_begin, VertexId* out) {
  std::size_t written = 0;
  const std::uint32_t* idx = a.indices().data();
  const std::uint64_t* bits = a.bits().data();
  const std::size_t ne = a.num_entries();
  for (std::size_t k = 0; k < ne; ++k) {
    written += wp::detail::extract_word(bits[k] & cur.word(idx[k]), idx[k],
                                        zone_begin, out + written);
  }
  return written;
}

}  // namespace hybrid_detail

inline int intersect_size_gt_val(const SparseWordSet& a, const HybridRow& b,
                                 std::int64_t theta) {
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  switch (b.kind) {
    case RowContainer::kBitset:
      return wp::active_table().size_gt_val(a, b.as_bitset(), theta);
    case RowContainer::kArray:
      return hybrid_detail::cursor_size_gt_val(
          a, hybrid_detail::ArrayWordCursor(b.u32(), b.units), m, theta);
    case RowContainer::kRun:
      return hybrid_detail::cursor_size_gt_val(
          a, hybrid_detail::RunWordCursor(b.u32(), b.units), m, theta);
  }
  return kTooSmall;
}

inline bool intersect_size_gt_bool(const SparseWordSet& a, const HybridRow& b,
                                   std::int64_t theta,
                                   bool enable_second_exit = true) {
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  switch (b.kind) {
    case RowContainer::kBitset:
      return wp::active_table().size_gt_bool(a, b.as_bitset(), theta,
                                             enable_second_exit);
    case RowContainer::kArray:
      return hybrid_detail::cursor_size_gt_bool(
          a, hybrid_detail::ArrayWordCursor(b.u32(), b.units), m, theta,
          enable_second_exit);
    case RowContainer::kRun:
      return hybrid_detail::cursor_size_gt_bool(
          a, hybrid_detail::RunWordCursor(b.u32(), b.units), m, theta,
          enable_second_exit);
  }
  return false;
}

inline int intersect_gt(const SparseWordSet& a, const HybridRow& b,
                        VertexId* out, std::int64_t theta) {
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  switch (b.kind) {
    case RowContainer::kBitset:
      return wp::active_table().gt(a, b.as_bitset(), out, theta);
    case RowContainer::kArray:
      return hybrid_detail::cursor_gt(
          a, hybrid_detail::ArrayWordCursor(b.u32(), b.units), b.zone_begin, m,
          out, theta);
    case RowContainer::kRun:
      return hybrid_detail::cursor_gt(
          a, hybrid_detail::RunWordCursor(b.u32(), b.units), b.zone_begin, m,
          out, theta);
  }
  return kTooSmall;
}

inline std::size_t intersect_size(const SparseWordSet& a, const HybridRow& b) {
  switch (b.kind) {
    case RowContainer::kBitset:
      return wp::active_table().size(a, b.as_bitset());
    case RowContainer::kArray:
      return hybrid_detail::cursor_size(
          a, hybrid_detail::ArrayWordCursor(b.u32(), b.units));
    case RowContainer::kRun:
      return hybrid_detail::cursor_size(
          a, hybrid_detail::RunWordCursor(b.u32(), b.units));
  }
  return 0;
}

inline std::size_t intersect_words(const SparseWordSet& a, const HybridRow& b,
                                   VertexId* out) {
  switch (b.kind) {
    case RowContainer::kBitset:
      return wp::active_table().words(a, b.as_bitset(), out);
    case RowContainer::kArray:
      return hybrid_detail::cursor_words(
          a, hybrid_detail::ArrayWordCursor(b.u32(), b.units), b.zone_begin,
          out);
    case RowContainer::kRun:
      return hybrid_detail::cursor_words(
          a, hybrid_detail::RunWordCursor(b.u32(), b.units), b.zone_begin,
          out);
  }
  return 0;
}

// --------------------------------------------------------------------------
// Sorted array A x array-container B: the array x array paths used when
// the word form of A is unavailable (degraded rounds).  B's elements are
// zone offsets, so the comparisons shift A by zone_begin once.

/// MembershipSet adapter over the array container (binary-search probes);
/// pairs with the generic early-exit templates for the gallop path.
class HybridArrayLookup {
 public:
  explicit HybridArrayLookup(const HybridRow& row)
      : e_(row.u32()), n_(row.units), zone_begin_(row.zone_begin),
        zone_bits_(row.zone_bits) {}
  bool contains(VertexId v) const {
    if (v < zone_begin_) return false;
    const VertexId i = v - zone_begin_;
    if (i >= zone_bits_) return false;
    return std::binary_search(e_, e_ + n_, static_cast<std::uint32_t>(i));
  }
  std::size_t size() const { return n_; }

 private:
  const std::uint32_t* e_;
  std::uint32_t n_;
  VertexId zone_begin_;
  VertexId zone_bits_;
};

/// Merge-based intersect-size-gt-bool of sorted A against the array
/// container (both sides ascending; dual miss budgets like
/// intersect_sorted_size_gt_bool).
inline bool hybrid_array_size_gt_bool(std::span<const VertexId> a,
                                      const HybridRow& b, std::int64_t theta,
                                      bool enable_second_exit = true) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.units);
  if (n <= theta || m <= theta) return false;
  const std::uint32_t* e = b.u32();
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::int64_t hits = 0;
  std::size_t i = 0, j = 0;
  const std::size_t an = a.size();
  while (i < an && j < b.units) {
    // A ids below the zone can never match a zone-offset container.
    const std::uint64_t ai =
        a[i] < b.zone_begin
            ? 0
            : static_cast<std::uint64_t>(a[i] - b.zone_begin) + 1;
    const std::uint64_t bj = static_cast<std::uint64_t>(e[j]) + 1;
    if (ai == bj) {
      ++hits;
      ++i;
      ++j;
      if (enable_second_exit && hits > theta) return true;
    } else if (ai < bj) {
      ++i;
      if (--ha <= 0) return false;
    } else {
      ++j;
      if (--hb <= 0) return false;
    }
  }
  return hits > theta;
}

/// Merge-based intersect-size-gt-val against the array container.
inline int hybrid_array_size_gt_val(std::span<const VertexId> a,
                                    const HybridRow& b, std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.units);
  if (n <= theta || m <= theta) return kTooSmall;
  const std::uint32_t* e = b.u32();
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::int64_t hits = 0;
  std::size_t i = 0, j = 0;
  const std::size_t an = a.size();
  while (i < an && j < b.units) {
    const std::uint64_t ai =
        a[i] < b.zone_begin
            ? 0
            : static_cast<std::uint64_t>(a[i] - b.zone_begin) + 1;
    const std::uint64_t bj = static_cast<std::uint64_t>(e[j]) + 1;
    if (ai == bj) {
      ++hits;
      ++i;
      ++j;
    } else if (ai < bj) {
      ++i;
      if (--ha <= 0) return kTooSmall;
    } else {
      ++j;
      if (--hb <= 0) return kTooSmall;
    }
  }
  return static_cast<int>(hits);
}

/// Merge-based intersect-gt against the array container; writes the
/// matches (as relabelled ids) to out.
inline int hybrid_array_gt(std::span<const VertexId> a, const HybridRow& b,
                           VertexId* out, std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.units);
  if (n <= theta || m <= theta) return kTooSmall;
  const std::uint32_t* e = b.u32();
  std::int64_t ha = n - theta;
  std::int64_t hb = m - theta;
  std::size_t written = 0;
  std::size_t i = 0, j = 0;
  const std::size_t an = a.size();
  while (i < an && j < b.units) {
    const std::uint64_t ai =
        a[i] < b.zone_begin
            ? 0
            : static_cast<std::uint64_t>(a[i] - b.zone_begin) + 1;
    const std::uint64_t bj = static_cast<std::uint64_t>(e[j]) + 1;
    if (ai == bj) {
      out[written++] = a[i];
      ++i;
      ++j;
    } else if (ai < bj) {
      ++i;
      if (--ha <= 0) return kTooSmall;
    } else {
      ++j;
      if (--hb <= 0) return kTooSmall;
    }
  }
  return static_cast<int>(written);
}

// --------------------------------------------------------------------------
// HybridRow x HybridRow.  Used by tests/bench and any future row-vs-row
// filtering; A's occupied words stream through B's cursor, with the same
// monotone exits at word granularity (remaining-count form, since a row
// has a popcount but no prefix array).

inline bool intersect_size_gt_bool(const HybridRow& a, const HybridRow& b,
                                   std::int64_t theta,
                                   bool enable_second_exit = true) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  hybrid_detail::HybridWordCursor cur(b);
  std::int64_t hits = 0;
  std::int64_t remaining = n;
  bool decided = false;
  bool result = false;
  hybrid_detail::for_each_word(a, [&](std::uint32_t w, std::uint64_t bits) {
    remaining -= std::popcount(bits);
    hits += std::popcount(bits & cur.word(w));
    if (hits + remaining <= theta) {
      decided = true;
      result = false;
      return false;
    }
    if (enable_second_exit && hits > theta) {
      decided = true;
      result = true;
      return false;
    }
    return true;
  });
  return decided ? result : hits > theta;
}

inline int intersect_size_gt_val(const HybridRow& a, const HybridRow& b,
                                 std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  hybrid_detail::HybridWordCursor cur(b);
  std::int64_t hits = 0;
  std::int64_t remaining = n;
  bool too_small = false;
  hybrid_detail::for_each_word(a, [&](std::uint32_t w, std::uint64_t bits) {
    remaining -= std::popcount(bits);
    hits += std::popcount(bits & cur.word(w));
    if (hits + remaining <= theta) {
      too_small = true;
      return false;
    }
    return true;
  });
  return too_small ? kTooSmall : static_cast<int>(hits);
}

inline int intersect_gt(const HybridRow& a, const HybridRow& b, VertexId* out,
                        std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  hybrid_detail::HybridWordCursor cur(b);
  std::int64_t hits = 0;
  std::int64_t remaining = n;
  std::size_t written = 0;
  bool too_small = false;
  const VertexId base = a.zone_begin;
  hybrid_detail::for_each_word(a, [&](std::uint32_t w, std::uint64_t bits) {
    remaining -= std::popcount(bits);
    const std::uint64_t both = bits & cur.word(w);
    hits += std::popcount(both);
    written += wp::detail::extract_word(both, w, base, out + written);
    if (hits + remaining <= theta) {
      too_small = true;
      return false;
    }
    return true;
  });
  return too_small ? kTooSmall : static_cast<int>(written);
}

inline std::size_t intersect_size(const HybridRow& a, const HybridRow& b) {
  hybrid_detail::HybridWordCursor cur(b);
  std::size_t hits = 0;
  hybrid_detail::for_each_word(a, [&](std::uint32_t w, std::uint64_t bits) {
    hits += static_cast<std::size_t>(std::popcount(bits & cur.word(w)));
    return true;
  });
  return hits;
}

}  // namespace lazymc
