// Set intersection kernels, including the paper's early-exit operations
// (Section IV-B, Algorithms 3 and 4).
//
// MC search asks three kinds of questions about |A ∩ B|:
//   intersect_gt            — give me the exact result set, but only if it
//                             is larger than θ (heuristic search);
//   intersect_size_gt_val   — give me the exact size if it is larger than
//                             θ (argmax-degree scans, filter 3);
//   intersect_size_gt_bool  — just tell me whether it exceeds θ
//                             (filter 2), with a *second* early exit that
//                             answers true as soon as enough elements have
//                             been found (the paper's key addition).
//
// A is always a materialized array; B is anything with a contains()-style
// membership test (hopscotch hash set, bitset row, or a sorted array via
// SortedLookup).  All functions are branch-light, allocation-free and
// thread-safe (read-only on inputs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/bitset_row.hpp"
#include "support/bitset.hpp"

namespace lazymc {

/// Membership concept: B.contains(v) and B.size().
template <typename S>
concept MembershipSet = requires(const S& s, VertexId v) {
  { s.contains(v) } -> std::convertible_to<bool>;
  { s.size() } -> std::convertible_to<std::size_t>;
};

/// Adapter giving a sorted array a contains() interface (binary search).
class SortedLookup {
 public:
  explicit SortedLookup(std::span<const VertexId> sorted) : data_(sorted) {}
  bool contains(VertexId v) const;
  std::size_t size() const { return data_.size(); }

 private:
  std::span<const VertexId> data_;
};

/// Return code of early-exit intersections when the threshold was not met.
inline constexpr int kTooSmall = -1;

// --------------------------------------------------------------------------
// Exact intersections (no early exit) — used where full results are needed
// and in tests as the reference.

/// Sorted-array merge intersection.  Returns the number of elements
/// written to `out` (out must have room for min(|a|,|b|)).
std::size_t intersect_sorted(std::span<const VertexId> a,
                             std::span<const VertexId> b,
                             VertexId* out);

/// As above, appending to a vector.
std::vector<VertexId> intersect_sorted(std::span<const VertexId> a,
                                       std::span<const VertexId> b);

/// Galloping (binary-search) intersection for skewed sizes |a| << |b|.
std::size_t intersect_gallop(std::span<const VertexId> a,
                             std::span<const VertexId> b,
                             VertexId* out);

/// Hash-probe intersection: |a| probes into b.
template <MembershipSet SetB>
std::size_t intersect_hash(std::span<const VertexId> a, const SetB& b,
                           VertexId* out) {
  std::size_t n = 0;
  for (VertexId x : a) {
    if (b.contains(x)) out[n++] = x;
  }
  return n;
}

/// Exact intersection size via hash probes.
template <MembershipSet SetB>
std::size_t intersect_size(std::span<const VertexId> a, const SetB& b) {
  std::size_t n = 0;
  for (VertexId x : a) n += b.contains(x) ? 1 : 0;
  return n;
}

// --------------------------------------------------------------------------
// Early-exit intersections (Algorithms 3 and 4).

/// intersect-gt (Algorithm 3): writes A ∩ B to `out` and returns its size
/// if it is strictly larger than θ; returns kTooSmall (with `out` holding
/// an unspecified partial result) as soon as that becomes impossible.
/// θ is a signed threshold; θ < 0 degenerates to an exact intersection.
template <MembershipSet SetB>
int intersect_gt(std::span<const VertexId> a, const SetB& b, VertexId* out,
                 std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  // h = number of misses we can still tolerate. Result size must be > θ,
  // i.e. misses must stay < n - θ.
  std::int64_t h = n - theta;
  std::int64_t written = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!b.contains(a[i])) {
      if (--h <= 0) return kTooSmall;  // too many misses: exit early
    } else {
      out[written++] = a[i];
    }
  }
  // h > 0 here; intersection size = written = h + θ  (n - misses).
  return static_cast<int>(written);
}

/// intersect-size-gt-val: returns |A ∩ B| if it is strictly larger than θ,
/// else kTooSmall (early exit).  Unlike the boolean variant it must finish
/// the scan to report the exact size, so it has only the "failure" exit.
template <MembershipSet SetB>
int intersect_size_gt_val(std::span<const VertexId> a, const SetB& b,
                          std::int64_t theta) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return kTooSmall;
  std::int64_t h = n - theta;
  std::int64_t hits = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!b.contains(a[i])) {
      if (--h <= 0) return kTooSmall;
    } else {
      ++hits;
    }
  }
  return static_cast<int>(hits);
}

/// intersect-size-gt-bool (Algorithm 4): returns |A ∩ B| > θ.  Two early
/// exits: (false) when too many elements of A missed B, and (true) when
/// the tolerated-miss budget h exceeds the number of unexamined elements
/// n-i-1 — even if all remaining probes miss, the answer stays true.
/// `enable_second_exit` gates the true-exit for the Fig. 5 ablation.
template <MembershipSet SetB>
bool intersect_size_gt_bool(std::span<const VertexId> a, const SetB& b,
                            std::int64_t theta,
                            bool enable_second_exit = true) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  if (n <= theta || m <= theta) return false;
  std::int64_t h = n - theta;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!b.contains(a[i])) {
      if (--h <= 0) return false;  // exit 1: cannot reach θ+1 hits
    } else if (enable_second_exit && h > n - i - 1) {
      return true;  // exit 2: hits already guaranteed (> θ)
    }
  }
  return h > 0;
}

// --------------------------------------------------------------------------
// Early-exit merge intersections for two *sorted* arrays.  Same contracts
// as the hash-probe variants above; used when neither side has a hash set
// and both are small (below LazyGraph::kHashDegreeThreshold).

/// Merge-based intersect-gt: exact result in `out` when size > theta,
/// else kTooSmall.  Exits as soon as the budget of tolerable "skips" on
/// either side is exhausted.
int intersect_sorted_gt(std::span<const VertexId> a,
                        std::span<const VertexId> b, VertexId* out,
                        std::int64_t theta);

/// Merge-based intersect-size-gt-bool with both early exits.
bool intersect_sorted_size_gt_bool(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   std::int64_t theta,
                                   bool enable_second_exit = true);

/// Merge-based intersect-size-gt-val: exact |A ∩ B| when > theta, else
/// kTooSmall; exits as soon as either side's miss budget is exhausted.
int intersect_sorted_size_gt_val(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 std::int64_t theta);

/// Exact merge intersection size (no early exit; "no early exits" policy).
std::size_t intersect_sorted_size(std::span<const VertexId> a,
                                  std::span<const VertexId> b);

// --------------------------------------------------------------------------
// Word-parallel kernels: SparseWordSet A against a BitsetRow B.  Same
// contracts as the scalar variants above, with the miss-budget / success
// exits checked once per 64-bit word (one AND + two popcounts per word)
// instead of once per element.

/// Word-parallel intersect-gt: writes A ∩ B (ascending relabelled ids) to
/// `out`, returns its size when > theta, else kTooSmall.
int intersect_gt(const SparseWordSet& a, const BitsetRow& b, VertexId* out,
                 std::int64_t theta);

/// Word-parallel intersect-size-gt-val.
int intersect_size_gt_val(const SparseWordSet& a, const BitsetRow& b,
                          std::int64_t theta);

/// Word-parallel intersect-size-gt-bool (both exits, word granularity).
bool intersect_size_gt_bool(const SparseWordSet& a, const BitsetRow& b,
                            std::int64_t theta,
                            bool enable_second_exit = true);

/// Exact word-parallel size / extraction (the "no early exits" policy).
std::size_t intersect_size(const SparseWordSet& a, const BitsetRow& b);
std::size_t intersect_words(const SparseWordSet& a, const BitsetRow& b,
                            VertexId* out);

// --------------------------------------------------------------------------
// Prefetched batch probing into a HopscotchSet.  Identical results to the
// scalar hash kernels; home buckets are software-prefetched
// kProbeLookahead iterations ahead so consecutive misses overlap in the
// memory system instead of serializing on two dependent cache-line loads.

/// How far ahead of the probe loop home buckets are prefetched.
inline constexpr std::size_t kProbeLookahead = 8;

int intersect_gt_prefetch(std::span<const VertexId> a, const HopscotchSet& b,
                          VertexId* out, std::int64_t theta);

int intersect_size_gt_val_prefetch(std::span<const VertexId> a,
                                   const HopscotchSet& b, std::int64_t theta);

bool intersect_size_gt_bool_prefetch(std::span<const VertexId> a,
                                     const HopscotchSet& b, std::int64_t theta,
                                     bool enable_second_exit = true);

/// Exact batched variants (the "no early exits" policy).
std::size_t intersect_size_prefetch(std::span<const VertexId> a,
                                    const HopscotchSet& b);
std::size_t intersect_hash_prefetch(std::span<const VertexId> a,
                                    const HopscotchSet& b, VertexId* out);

// --------------------------------------------------------------------------
// Reference (naive) implementations for property tests.

std::vector<VertexId> intersect_reference(std::span<const VertexId> a,
                                          std::span<const VertexId> b);

}  // namespace lazymc
