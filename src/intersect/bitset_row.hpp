// Word-packed neighborhood representations for the word-parallel
// intersection kernels.
//
// Both types live in "zone coordinates": the zone of interest is the
// suffix [zone_begin, n) of relabelled vertex ids whose coreness was >=
// the incumbent when bitset rows were enabled (LazyGraph keeps the zone
// fixed from that point on; the incumbent only grows, so everything that
// later matters stays inside it).  Bit i of a row stands for relabelled
// vertex zone_begin + i.
//
//   BitsetRow      — a non-owning view of one vertex's packed filtered
//                    neighborhood (built and memoized by LazyGraph).  It
//                    satisfies the MembershipSet concept, so every scalar
//                    probing kernel also works against it (a bit test
//                    instead of a hash probe).
//   SparseWordSet  — the query side A of |A ∩ B| > θ, as the list of
//                    non-zero 64-bit words of A's characteristic vector.
//                    Intersecting with a BitsetRow is then one AND +
//                    popcount per *occupied* word of A, independent of
//                    the zone size.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/check.hpp"
#include "support/faultinject.hpp"
#include "support/simd.hpp"

namespace lazymc {

/// Non-owning view of a packed bitset neighborhood row over the zone of
/// interest.  `words == nullptr` means "no row" (representation absent).
struct BitsetRow {
  const std::uint64_t* words = nullptr;
  VertexId zone_begin = 0;
  VertexId zone_bits = 0;      // zone size in bits
  std::uint32_t popcount = 0;  // set bits = filtered in-zone degree

  bool valid() const { return words != nullptr; }
  std::size_t num_words() const {
    return (static_cast<std::size_t>(zone_bits) + 63) / 64;
  }

  /// Membership of relabelled vertex v.  Vertices outside the zone report
  /// false; they have coreness below the incumbent at enable time, so by
  /// the lazy-filtering invariant they can no longer affect the search.
  bool contains(VertexId v) const {
    if (v < zone_begin) return false;
    const VertexId i = v - zone_begin;
    if (i >= zone_bits) return false;
    return (words[i >> 6] >> (i & 63)) & 1ULL;
  }
  std::size_t size() const { return popcount; }
};

/// A block of zone rows built ahead of time — the binary graph store's
/// (store/binary_graph.hpp) prebuilt row section, mmap'ed read-only and
/// handed to LazyGraph::adopt_prebuilt_rows so the word kernels consume
/// it zero-copy.  Row i (relabelled vertex zone_begin + i) starts at
/// words + i * stride_words; the producer guarantees 64-byte alignment
/// of `words` and of the stride.  Non-owning: the caller keeps the
/// backing storage (page cache mapping) alive for the consumer's
/// lifetime.
struct PrebuiltRows {
  const std::uint64_t* words = nullptr;
  const std::uint32_t* counts = nullptr;  // per-row popcounts
  VertexId zone_begin = 0;
  VertexId zone_bits = 0;
  std::size_t stride_words = 0;

  bool valid() const { return words && counts && zone_bits > 0; }
};

/// Sparse word-list form of a *sorted* vertex array lying inside the zone.
/// Rebuilt per filter round from scratch storage; building is O(|A|) and
/// allocation-free once the arrays reach their high-water capacity.
///
/// Stored structure-of-arrays (parallel `indices` / `bits` runs) so the
/// SIMD kernel tiers can load a block of word indices and a block of bit
/// masks with two straight vector loads, then gather the matching row
/// words; entry k pairs indices()[k] with bits()[k].
class SparseWordSet {
 public:
  /// Rebuilds from `sorted` (ascending, unique, every element >=
  /// zone_begin and inside the zone).
  void build(std::span<const VertexId> sorted, VertexId zone_begin) {
    // Models the arrays' growth to high-water capacity failing; callers
    // degrade to scalar kernels for the round (see neighbor_search.cpp).
    LAZYMC_FAULT_BAD_ALLOC("wordset.build");
    indices_.clear();
    bits_.clear();
    prefix_.clear();
    prefix_.push_back(0);
    zone_begin_ = zone_begin;
    count_ = sorted.size();
    std::uint32_t cur_index = 0;
    std::uint64_t cur_bits = 0;
    std::uint32_t seen = 0;
    bool open = false;
    for (VertexId v : sorted) {
      const VertexId off = v - zone_begin;
      const std::uint32_t w = off >> 6;
      if (!open || w != cur_index) {
        if (open) {
          indices_.push_back(cur_index);
          bits_.push_back(cur_bits);
          prefix_.push_back(seen);
        }
        cur_index = w;
        cur_bits = 0;
        open = true;
      }
      cur_bits |= 1ULL << (off & 63);
      ++seen;
    }
    if (open) {
      indices_.push_back(cur_index);
      bits_.push_back(cur_bits);
      prefix_.push_back(seen);
    }
    verify();
  }

  /// Checked builds: machine-checks the SoA invariants the kernels'
  /// miss-budget arithmetic rests on — parallel indices/bits/prefix run
  /// lengths, strictly ascending word indices, no empty words, and
  /// cumulative popcounts that agree with the stored bit words.  Compiles
  /// to nothing in default builds.
  void verify() const {
#if LAZYMC_CHECKED_ENABLED
    LAZYMC_ASSERT(indices_.size() == bits_.size() &&
                      prefix_.size() == indices_.size() + 1,
                  "SparseWordSet parallel-array lengths disagree");
    std::size_t total = 0;
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      LAZYMC_ASSERT(bits_[k] != 0, "SparseWordSet stores an empty word");
      LAZYMC_ASSERT(k == 0 || indices_[k] > indices_[k - 1],
                    "SparseWordSet word indices are not strictly ascending");
      LAZYMC_ASSERT(prefix_[k] == total,
                    "SparseWordSet prefix-popcount is inconsistent with "
                    "its bit words");
      total += static_cast<std::size_t>(std::popcount(bits_[k]));
    }
    LAZYMC_ASSERT(prefix_.back() == total,
                  "SparseWordSet prefix-popcount tail is inconsistent");
    LAZYMC_ASSERT(total == count_,
                  "SparseWordSet element count disagrees with its bit "
                  "words");
#endif
  }

  /// Occupied zone-word indices, ascending.
  std::span<const std::uint32_t> indices() const { return indices_; }
  /// The non-zero characteristic-vector word for each index.
  std::span<const std::uint64_t> bits() const { return {bits_.data(),
                                                        bits_.size()}; }
  /// prefix()[k] = set bits in entries [0, k); size num_entries() + 1.
  /// Precomputed once per build so the kernels' per-block miss-budget
  /// check needs no popcount of the A side at all (h <= 0 is equivalent
  /// to hits + (|A| - prefix) <= θ) — the build is amortized over one
  /// kernel call per candidate in the filter round that built it.
  std::span<const std::uint32_t> prefix() const { return prefix_; }
  std::size_t num_entries() const { return indices_.size(); }
  /// Total number of set bits (= |A|).
  std::size_t count() const { return count_; }
  VertexId zone_begin() const { return zone_begin_; }

 private:
  // Checked-mode death tests corrupt the private arrays to prove verify()
  // trips; no production code uses this access.
  friend struct SparseWordSetTestAccess;

  std::vector<std::uint32_t> indices_;
  simd::AlignedWords bits_;
  std::vector<std::uint32_t> prefix_;
  std::size_t count_ = 0;
  VertexId zone_begin_ = 0;
};

}  // namespace lazymc
