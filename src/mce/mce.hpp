// Maximal Clique Enumeration (MCE).
//
// The paper frames MC as "dominated by set intersection operations similar
// to Maximal Clique Enumeration" and borrows its early-exit intersection
// idea from the author's MCE work (ICS'24 [4]).  This module provides the
// MCE substrate: Bron–Kerbosch with Tomita pivoting over a degeneracy-
// order outer loop (Eppstein–Löffler–Strash), the same building blocks the
// MC solver reuses (dense bitset subgraphs, coreness ordering).
//
// Useful on its own and as a cross-check: the largest enumerated maximal
// clique must equal the maximum clique the MC solvers report.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "graph/graph.hpp"
#include "support/control.hpp"

namespace lazymc::mce {

struct MceResult {
  /// Number of maximal cliques enumerated.
  std::uint64_t count = 0;
  /// Size of the largest maximal clique seen (== omega(G) when complete).
  VertexId max_size = 0;
  bool timed_out = false;
};

/// Enumerates every maximal clique of g, invoking `visitor` with the
/// vertex set (original ids, unspecified order) of each.  Pass a null
/// visitor to count only.  Cooperative cancellation via `control`.
MceResult enumerate_maximal_cliques(
    const Graph& g,
    const std::function<void(std::span<const VertexId>)>& visitor = nullptr,
    const SolveControl* control = nullptr);

/// Count-only convenience wrapper.
MceResult count_maximal_cliques(const Graph& g,
                                const SolveControl* control = nullptr);

}  // namespace lazymc::mce
