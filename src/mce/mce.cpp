#include "mce/mce.hpp"

#include <algorithm>
#include <vector>

#include "graph/subgraph.hpp"
#include "kcore/kcore.hpp"
#include "support/bitset.hpp"

namespace lazymc::mce {
namespace {

/// Bron–Kerbosch with Tomita pivoting on a dense local subgraph.
class Enumerator {
 public:
  Enumerator(const DenseSubgraph& g,
             const std::function<void(std::span<const VertexId>)>& visitor,
             const SolveControl* control, std::vector<VertexId>& scratch)
      : g_(g), visitor_(visitor), control_(control), current_(scratch) {}

  MceResult result;

  void run(DynamicBitset p, DynamicBitset x) { expand(p, x); }

 private:
  void report() {
    ++result.count;
    result.max_size = std::max(
        result.max_size, static_cast<VertexId>(current_.size()));
    if (visitor_) {
      visitor_(std::span<const VertexId>(current_.data(), current_.size()));
    }
  }

  void expand(DynamicBitset& p, DynamicBitset& x) {
    if (control_ && control_->should_stop(stop_counter_)) {
      result.timed_out = true;
      return;
    }
    if (!p.any() && !x.any()) {
      report();
      return;
    }
    // Tomita pivot: u in P ∪ X maximizing |P ∩ N(u)| minimizes branching.
    std::size_t pivot = g_.size();
    std::size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](std::size_t u) {
      std::size_t d = g_.adj[u].count_and(p);
      if (!have_pivot || d > best) {
        pivot = u;
        best = d;
        have_pivot = true;
      }
    };
    for (std::size_t u = p.find_first(); u < p.size(); u = p.find_next(u)) {
      consider(u);
    }
    for (std::size_t u = x.find_first(); u < x.size(); u = x.find_next(u)) {
      consider(u);
    }

    // Branch on P \ N(pivot).
    DynamicBitset candidates = p;
    if (have_pivot) candidates.and_not_with(g_.adj[pivot]);
    for (std::size_t v = candidates.find_first(); v < candidates.size();
         v = candidates.find_next(v)) {
      if (result.timed_out) return;
      current_.push_back(g_.vertices[v]);
      DynamicBitset np(p.size()), nx(x.size());
      np.assign_and(p, g_.adj[v]);
      nx.assign_and(x, g_.adj[v]);
      expand(np, nx);
      current_.pop_back();
      p.reset(v);
      x.set(v);
    }
  }

  const DenseSubgraph& g_;
  const std::function<void(std::span<const VertexId>)>& visitor_;
  const SolveControl* control_;
  std::vector<VertexId>& current_;
  std::uint64_t stop_counter_ = 0;
};

}  // namespace

MceResult enumerate_maximal_cliques(
    const Graph& g,
    const std::function<void(std::span<const VertexId>)>& visitor,
    const SolveControl* control) {
  MceResult total;
  const VertexId n = g.num_vertices();
  if (n == 0) return total;

  // Degeneracy-order outer loop (Eppstein–Löffler–Strash): for each v in
  // peeling order, enumerate all maximal cliques whose earliest-ordered
  // vertex is v.  P = later-ordered neighbors, X = earlier-ordered.
  kcore::CoreDecomposition core = kcore::coreness(g);
  std::vector<VertexId> pos(n);
  for (VertexId i = 0; i < n; ++i) pos[core.peel_order[i]] = i;

  std::vector<VertexId> current;
  std::vector<VertexId> members;
  for (VertexId idx = 0; idx < n; ++idx) {
    VertexId v = core.peel_order[idx];
    if (g.degree(v) == 0) {
      // Isolated vertex: itself a maximal clique.
      ++total.count;
      total.max_size = std::max<VertexId>(total.max_size, 1);
      if (visitor) {
        VertexId self[1] = {v};
        visitor(std::span<const VertexId>(self, 1));
      }
      continue;
    }
    members.clear();
    for (VertexId u : g.neighbors(v)) members.push_back(u);
    DenseSubgraph sub = induce_dense(g, members);
    DynamicBitset p(sub.size()), x(sub.size());
    for (std::size_t i = 0; i < sub.size(); ++i) {
      if (pos[sub.vertices[i]] > idx) {
        p.set(i);
      } else {
        x.set(i);
      }
    }
    current.clear();
    current.push_back(v);
    Enumerator e(sub, visitor, control, current);
    e.run(std::move(p), std::move(x));
    total.count += e.result.count;
    total.max_size = std::max(total.max_size, e.result.max_size);
    if (e.result.timed_out) {
      total.timed_out = true;
      break;
    }
  }
  return total;
}

MceResult count_maximal_cliques(const Graph& g, const SolveControl* control) {
  return enumerate_maximal_cliques(g, nullptr, control);
}

}  // namespace lazymc::mce
